(* A small thread-safe tracing/metrics layer for the tuning stack.

   Three primitives — spans (timed regions), counters, gauges — feed two
   outputs: an optional ndjson event stream (one JSON object per line,
   written as events happen) and an always-on in-memory aggregation
   (per span name: call count, total/max seconds, per-domain busy time)
   rendered by [summary].

   The disabled instance ([null], the global default) short-circuits
   before taking any lock or allocating any event, so instrumented hot
   paths cost one load and one branch when tracing is off.  Telemetry
   only observes: nothing in here feeds back into tuning results, so
   enabling a sink cannot perturb the engine's determinism guarantees. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Wall clock clamped to be non-decreasing across all domains, so span
   durations never go negative if the system clock steps backwards. *)
let last_now = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last_now in
  if t >= prev then if Atomic.compare_and_set last_now prev t then t else now ()
  else prev

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type sink = Null | Channel of out_channel | Buffer of Buffer.t

type span_stat = {
  mutable calls : int;
  mutable total : float;  (* seconds *)
  mutable max : float;
  by_domain : (int, float) Hashtbl.t;  (* domain id -> busy seconds *)
}

type gauge_stat = { mutable last : float; mutable peak : float }

type t = {
  enabled : bool;
  sink : sink;
  mutex : Mutex.t;
  epoch : float;
  spans : (string, span_stat) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge_stat) Hashtbl.t;
}

let null =
  {
    enabled = false;
    sink = Null;
    mutex = Mutex.create ();
    epoch = 0.0;
    spans = Hashtbl.create 1;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
  }

let create ?(sink = Null) () =
  {
    enabled = true;
    sink;
    mutex = Mutex.create ();
    epoch = now ();
    spans = Hashtbl.create 64;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
  }

let enabled t = t.enabled

(* ------------------------------------------------------------------ *)
(* ndjson emission                                                     *)
(* ------------------------------------------------------------------ *)

let escape_json b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Must be called with [t.mutex] held. *)
let emit_line t ~kind ~name ~ts ~domain ~fields ~attrs =
  match t.sink with
  | Null -> ()
  | Channel _ | Buffer _ ->
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"type\":\"";
    Buffer.add_string b kind;
    Buffer.add_string b "\",\"name\":\"";
    escape_json b name;
    Buffer.add_string b (Printf.sprintf "\",\"ts\":%.6f,\"domain\":%d" ts domain);
    List.iter
      (fun (k, v) ->
        Buffer.add_string b ",\"";
        Buffer.add_string b k;
        Buffer.add_string b "\":";
        Buffer.add_string b v)
      fields;
    (match attrs with
    | [] -> ()
    | attrs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_json b k;
          Buffer.add_string b "\":\"";
          escape_json b v;
          Buffer.add_char b '"')
        attrs;
      Buffer.add_char b '}');
    Buffer.add_string b "}\n";
    (match t.sink with
    | Channel oc -> output_string oc (Buffer.contents b)
    | Buffer dst -> Buffer.add_buffer dst b
    | Null -> ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let domain_id () = (Domain.self () :> int)

let record_span t name ~start ~dur ~attrs =
  let domain = domain_id () in
  Mutex.lock t.mutex;
  let stat =
    match Hashtbl.find_opt t.spans name with
    | Some s -> s
    | None ->
      let s = { calls = 0; total = 0.0; max = 0.0; by_domain = Hashtbl.create 4 } in
      Hashtbl.replace t.spans name s;
      s
  in
  stat.calls <- stat.calls + 1;
  stat.total <- stat.total +. dur;
  if dur > stat.max then stat.max <- dur;
  Hashtbl.replace stat.by_domain domain
    (dur +. Option.value ~default:0.0 (Hashtbl.find_opt stat.by_domain domain));
  emit_line t ~kind:"span" ~name ~ts:(start -. t.epoch) ~domain
    ~fields:[ ("dur", Printf.sprintf "%.6f" dur) ]
    ~attrs;
  Mutex.unlock t.mutex

(* Ambient span attributes: a scope (e.g. the serve daemon's per-job
   "job" id) whose attributes are appended to every span recorded inside
   it.  Domain-local by design — spans recorded by pool workers on other
   domains do not inherit the scope (the worker's domain has its own,
   empty, slot), which keeps this allocation-free off the scoped path and
   lock-free everywhere. *)
let ambient_attrs : (string * string) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let with_ambient_attrs attrs f =
  let prev = Domain.DLS.get ambient_attrs in
  Domain.DLS.set ambient_attrs (attrs @ prev);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_attrs prev) f

let span t ?(attrs = []) name f =
  if not t.enabled then f ()
  else begin
    let attrs =
      match Domain.DLS.get ambient_attrs with
      | [] -> attrs
      | ambient -> attrs @ ambient
    in
    let start = now () in
    match f () with
    | y ->
      record_span t name ~start ~dur:(now () -. start) ~attrs;
      y
    | exception e ->
      record_span t name ~start ~dur:(now () -. start)
        ~attrs:(("error", Printexc.to_string e) :: attrs);
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let count t ?(by = 1) name =
  if t.enabled then begin
    let ts = now () -. t.epoch in
    Mutex.lock t.mutex;
    let total =
      match Hashtbl.find_opt t.counters name with
      | Some r ->
        r := !r + by;
        !r
      | None ->
        Hashtbl.replace t.counters name (ref by);
        by
    in
    emit_line t ~kind:"count" ~name ~ts ~domain:(domain_id ())
      ~fields:[ ("by", string_of_int by); ("value", string_of_int total) ]
      ~attrs:[];
    Mutex.unlock t.mutex
  end

let gauge t name v =
  if t.enabled then begin
    let ts = now () -. t.epoch in
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.gauges name with
    | Some g ->
      g.last <- v;
      if v > g.peak then g.peak <- v
    | None -> Hashtbl.replace t.gauges name { last = v; peak = v });
    emit_line t ~kind:"gauge" ~name ~ts ~domain:(domain_id ())
      ~fields:[ ("value", Printf.sprintf "%g" v) ]
      ~attrs:[];
    Mutex.unlock t.mutex
  end

(* ------------------------------------------------------------------ *)
(* Global instance                                                     *)
(* ------------------------------------------------------------------ *)

(* Set once at startup (before worker domains exist) by the drivers;
   everything else reads it.  The default is the disabled instance. *)
let global_t = Atomic.make null

let set_global t = Atomic.set global_t t

let global () = Atomic.get global_t

let with_span ?attrs name f = span (global ()) ?attrs name f

let add_count ?by name = count (global ()) ?by name

let set_gauge name v = gauge (global ()) name v

(* ------------------------------------------------------------------ *)
(* Inspection and summary                                              *)
(* ------------------------------------------------------------------ *)

let counter_value t name =
  Mutex.lock t.mutex;
  let v = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0 in
  Mutex.unlock t.mutex;
  v

let span_calls t name =
  Mutex.lock t.mutex;
  let v =
    match Hashtbl.find_opt t.spans name with Some s -> s.calls | None -> 0
  in
  Mutex.unlock t.mutex;
  v

let span_seconds t name =
  Mutex.lock t.mutex;
  let v =
    match Hashtbl.find_opt t.spans name with Some s -> s.total | None -> 0.0
  in
  Mutex.unlock t.mutex;
  v

let flush t =
  Mutex.lock t.mutex;
  (match t.sink with Channel oc -> Stdlib.flush oc | _ -> ());
  Mutex.unlock t.mutex

let summary t =
  if not t.enabled then "telemetry: disabled (no-op sink)\n"
  else begin
    Mutex.lock t.mutex;
    let wall = now () -. t.epoch in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "== telemetry summary (wall %.2fs) ==\n" wall);
    let spans =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.spans []
      |> List.sort (fun (_, a) (_, c) -> compare c.total a.total)
    in
    if spans <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-28s %9s %10s %10s %10s %7s\n" "span" "calls"
           "total" "mean" "max" "wall%");
      List.iter
        (fun (name, s) ->
          Buffer.add_string b
            (Printf.sprintf "%-28s %9d %9.3fs %8.3fms %8.3fms %6.1f%%\n" name
               s.calls s.total
               (1000.0 *. s.total /. float_of_int (max 1 s.calls))
               (1000.0 *. s.max)
               (if wall > 0.0 then 100.0 *. s.total /. wall else 0.0)))
        spans
    end;
    let counters =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
      |> List.sort compare
    in
    if counters <> [] then begin
      Buffer.add_string b "-- counters --\n";
      List.iter
        (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-28s %9d\n" name v))
        counters
    end;
    let gauges =
      Hashtbl.fold (fun name g acc -> (name, g) :: acc) t.gauges []
      |> List.sort compare
    in
    if gauges <> [] then begin
      Buffer.add_string b "-- gauges (last / peak) --\n";
      List.iter
        (fun (name, g) ->
          Buffer.add_string b
            (Printf.sprintf "%-28s %9g / %g\n" name g.last g.peak))
        gauges
    end;
    (* the paper's §4.2 cost breakdown: where a tuning run's time goes.
       Shown whenever the tuner spans were recorded at all — a run fast
       enough to measure 0.0s still gets the section (as zeros) rather
       than silently dropping it. *)
    let sec name =
      match Hashtbl.find_opt t.spans name with Some s -> s.total | None -> 0.0
    in
    let present name = Hashtbl.mem t.spans name in
    let compile = sec "tuner.compile"
    and ncd = sec "tuner.ncd"
    and binhunt = sec "tuner.binhunt" in
    let measured = compile +. ncd +. binhunt in
    let denom = if measured > 0.0 then measured else 1.0 in
    if present "tuner.compile" || present "tuner.ncd" || present "tuner.binhunt"
    then
      Buffer.add_string b
        (Printf.sprintf
           "-- cost split (paper §4.2) --\n\
            compile %.1f%%  ncd %.1f%%  binhunt %.1f%%  (of %.2fs measured)\n"
           (100.0 *. compile /. denom)
           (100.0 *. ncd /. denom)
           (100.0 *. binhunt /. denom)
           measured);
    (* per-domain busy time for the worker pool: the busy/idle picture *)
    (match Hashtbl.find_opt t.spans "pool.chunk" with
    | Some s when Hashtbl.length s.by_domain > 0 ->
      Buffer.add_string b "-- pool worker busy seconds (by domain) --\n";
      Hashtbl.fold (fun d busy acc -> (d, busy) :: acc) s.by_domain []
      |> List.sort compare
      |> List.iter (fun (d, busy) ->
             Buffer.add_string b
               (Printf.sprintf "domain %-3d %9.3fs busy  %9.3fs idle\n" d busy
                  (max 0.0 (wall -. busy))))
    | _ -> ());
    Mutex.unlock t.mutex;
    Buffer.contents b
  end
