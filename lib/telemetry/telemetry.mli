(** Thread-safe tracing and metrics for the tuning stack.

    The paper's evaluation (§4–5) is a cost story — compilation and
    BinHunt dominate the GA's own bookkeeping — and this layer is how the
    reproduction measures itself: spans (timed regions), counters, and
    gauges recorded from any domain, aggregated in memory, and optionally
    streamed to an ndjson sink (one JSON object per line).

    Instrumented code uses the process-global instance through
    {!with_span}, {!add_count}, and {!set_gauge}.  The default global
    instance is {!null}, which is {e disabled}: every entry point
    short-circuits on one flag test before allocating or locking, so
    instrumentation is free when tracing is off.  Telemetry is purely
    observational — no tuning result ever depends on it, so enabling a
    sink cannot perturb the engine's determinism guarantees (the
    j-differential and table1-sentinel tests hold with tracing on or
    off).

    Timestamps come from a wall clock clamped to be non-decreasing
    across domains, so durations are never negative. *)

type t

type sink =
  | Null  (** aggregate in memory only; no event stream *)
  | Channel of out_channel  (** ndjson lines, written as events happen *)
  | Buffer of Buffer.t  (** ndjson lines into a buffer (tests) *)

val null : t
(** The disabled instance: all operations are no-ops. *)

val create : ?sink:sink -> unit -> t
(** A fresh enabled instance.  [sink] defaults to [Null] (aggregation
    and {!summary} still work; nothing is streamed). *)

val enabled : t -> bool

(** {1 Global instance} *)

val set_global : t -> unit
(** Install [t] as the process-global instance.  Call once at startup,
    before worker domains are spawned. *)

val global : unit -> t

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] against the global instance and
    records a span named [name] (with optional string attributes).  If
    [f] raises, the span is still recorded — with an ["error"] attribute
    — and the exception is re-raised. *)

val with_ambient_attrs : (string * string) list -> (unit -> 'a) -> 'a
(** [with_ambient_attrs attrs f] runs [f ()] with [attrs] appended to
    every span recorded {e on this domain} inside the dynamic extent of
    [f] — the serve daemon wraps each job in one of these so its spans
    carry the job id without threading it through every call site.
    Scopes nest (inner scopes append).  Domain-local: spans recorded by
    pool workers on other domains do not inherit the scope.  Free when
    telemetry is disabled beyond one domain-local read per span. *)

val add_count : ?by:int -> string -> unit
(** Increment a named counter on the global instance (default [by:1]). *)

val set_gauge : string -> float -> unit
(** Record a named gauge observation on the global instance; the
    aggregation keeps the last and peak values. *)

(** {1 Instance-level operations} *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val count : t -> ?by:int -> string -> unit

val gauge : t -> string -> float -> unit

(** {1 Inspection} *)

val counter_value : t -> string -> int
(** Current value of a counter (0 if never incremented). *)

val span_calls : t -> string -> int
(** Number of recorded spans under [name]. *)

val span_seconds : t -> string -> float
(** Total seconds recorded under span [name]. *)

val summary : t -> string
(** Human-readable report: per-span call counts / total / mean / max /
    wall share (spans nest, so shares need not sum to 100%), counters,
    gauges, the paper-§4.2 compile/NCD/BinHunt cost split (when the
    [tuner.*] spans are present), and per-domain busy/idle time for the
    worker pool (when [pool.chunk] spans are present). *)

val flush : t -> unit
(** Flush a [Channel] sink. *)
