(** The metaheuristic search engine (paper §4.1, Appendix B).

    A generational genetic algorithm over boolean genomes (compiler flag
    vectors): tournament selection, uniform crossover, per-gene mutation
    with a forced minimum ([must_mutate_count]), elitism, and an external
    repair hook (the constraint solver).  Fitness evaluations are cached
    by genome so the iteration count matches the number of distinct
    compilations, which is what the paper's Table 1 reports. *)

type params = {
  population_size : int;
  mutation_rate : float;  (** per-gene flip probability *)
  crossover_rate : float;  (** probability a pair recombines *)
  must_mutate_count : int;  (** minimum flips applied to each child *)
  crossover_strength : float;  (** bias towards the fitter parent's genes *)
  tournament_size : int;
  elitism : int;  (** individuals copied unchanged per generation *)
}

val default_params : params

type termination = {
  max_evaluations : int;
  plateau_window : int;  (** evaluations with no relative improvement … *)
  plateau_epsilon : float;  (** … above this rate stop the search (0.35%) *)
}

val default_termination : termination

type outcome = {
  best : bool array;
  best_fitness : float;
  evaluations : int;  (** distinct genomes compiled *)
  history : (int * float) list;
      (** (evaluation index, best-so-far fitness), ascending *)
}

val run :
  ?batch_fitness:(bool array array -> float array) ->
  rng:Util.Rng.t ->
  params:params ->
  termination:termination ->
  ngenes:int ->
  seeds:bool array list ->
  repair:(bool array -> bool array) ->
  fitness:(bool array -> float) ->
  unit ->
  outcome
(** Maximize [fitness].  [seeds] become part of the initial population
    (padded with random genomes).  Every genome is passed through
    [repair] before evaluation.

    Evaluation is generational: each generation's distinct unevaluated
    genomes are scored as one batch, by [batch_fitness] when given
    (element [i] of its result must be the fitness of genome [i] — the
    hook through which {!Bintuner.Tuner} fans a generation out across a
    {!Parallel.Pool}) and by mapping [fitness] otherwise.  All search
    decisions (selection, crossover, mutation, repair, termination) stay
    on the caller's [rng] in the sequential part of the loop, so the
    outcome is a function of the inputs alone — independent of how a
    batch hook schedules its work.  The evaluation budget is enforced at
    batch granularity: a batch is truncated, never overrun. *)
