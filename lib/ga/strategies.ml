type outcome = Genetic.outcome

let make_tracker () =
  let cache = Hashtbl.create 256 in
  let evals = ref 0 in
  let best = ref [||] in
  let best_fitness = ref neg_infinity in
  let history = ref [] in
  let key g = String.init (Array.length g) (fun i -> if g.(i) then '1' else '0') in
  let evaluate fitness genome =
    match Hashtbl.find_opt cache (key genome) with
    | Some f -> f
    | None ->
      let f = fitness genome in
      incr evals;
      Hashtbl.replace cache (key genome) f;
      if f > !best_fitness then begin
        best_fitness := f;
        best := Array.copy genome
      end;
      history := (!evals, !best_fitness) :: !history;
      f
  in
  (evaluate, evals, best, best_fitness, history)

let finish (evals, best, best_fitness, history) : outcome =
  {
    Genetic.best = !best;
    best_fitness = !best_fitness;
    evaluations = !evals;
    history = List.rev !history;
  }

let hill_climb ~rng ~max_evaluations ~ngenes ~seeds ~repair ~fitness =
  let evaluate, evals, best, best_fitness, history = make_tracker () in
  let eval g = evaluate fitness (repair g) in
  let start () =
    match seeds with
    | s :: _ when !evals = 0 -> Array.copy s
    | _ -> Array.init ngenes (fun _ -> Util.Rng.bool rng)
  in
  let current = ref (start ()) in
  let current_fitness = ref (eval !current) in
  (* cached re-evaluations do not consume budget; bound raw steps too *)
  let steps = ref 0 in
  while !evals < max_evaluations && !steps < max_evaluations * 20 do
    incr steps;
    (* evaluate all single-bit neighbours, move to the best improving *)
    let best_move = ref None in
    let i = ref 0 in
    while !i < ngenes && !evals < max_evaluations do
      let n = Array.copy !current in
      n.(!i) <- not n.(!i);
      let f = eval n in
      (match !best_move with
      | Some (_, bf) when bf >= f -> ()
      | _ -> if f > !current_fitness then best_move := Some (n, f));
      incr i
    done;
    match !best_move with
    | Some (n, f) ->
      current := n;
      current_fitness := f
    | None ->
      (* local optimum: random restart *)
      current := Array.init ngenes (fun _ -> Util.Rng.bool rng);
      current_fitness := eval !current
  done;
  finish (evals, best, best_fitness, history)

let anneal ~rng ~max_evaluations ~ngenes ~seeds ~repair ~fitness =
  let evaluate, evals, best, best_fitness, history = make_tracker () in
  let eval g = evaluate fitness (repair g) in
  let current =
    ref
      (match seeds with
      | s :: _ -> Array.copy s
      | [] -> Array.init ngenes (fun _ -> Util.Rng.bool rng))
  in
  let current_fitness = ref (eval !current) in
  let t0 = 0.08 and t_end = 0.002 in
  let steps = ref 0 in
  while !evals < max_evaluations && !steps < max_evaluations * 20 do
    incr steps;
    let progress = float_of_int !evals /. float_of_int max_evaluations in
    let temp = t0 *. ((t_end /. t0) ** progress) in
    let proposal = Array.copy !current in
    let flips = 1 + Util.Rng.int rng 2 in
    for _ = 1 to flips do
      let i = Util.Rng.int rng ngenes in
      proposal.(i) <- not proposal.(i)
    done;
    let f = eval proposal in
    let delta = f -. !current_fitness in
    let accept =
      delta >= 0.0 || Util.Rng.float rng 1.0 < exp (delta /. temp)
    in
    if accept then begin
      current := proposal;
      current_fitness := f
    end
  done;
  finish (evals, best, best_fitness, history)
