(** Alternative metaheuristics for the flag-space search.

    The paper's §4.1 argues for the genetic algorithm on the grounds that
    "the options revealing the optimal effects are rare, but the local
    minima are frequent", making biased random search beat local search
    such as hill climbing; its §7 names MCMC sampling as future work.
    Both alternatives are implemented here so the claim can be tested as
    an ablation (the [ablation] experiment of the benchmark harness). *)

val hill_climb :
  rng:Util.Rng.t ->
  max_evaluations:int ->
  ngenes:int ->
  seeds:bool array list ->
  repair:(bool array -> bool array) ->
  fitness:(bool array -> float) ->
  Genetic.outcome
(** Steepest-ascent hill climbing with random restarts: from the best
    seed, repeatedly evaluate all single-bit neighbours and move to the
    best improving one; restart from a random genome when stuck. *)

val anneal :
  rng:Util.Rng.t ->
  max_evaluations:int ->
  ngenes:int ->
  seeds:bool array list ->
  repair:(bool array -> bool array) ->
  fitness:(bool array -> float) ->
  Genetic.outcome
(** Markov-chain Monte-Carlo search (simulated annealing with a
    geometric temperature schedule): random single/double bit-flip
    proposals accepted with probability exp(Δ/T). *)
