module A = Minic.Ast
open Ir

type options = {
  merge_conditionals : bool;
  vectorize : bool;
}

let default_options = { merge_conditionals = false; vectorize = false }

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Smap = Map.Make (String)

type binding =
  | Bslot of int  (** local scalar / spilled parameter *)
  | Barray of string  (** array (local resolved name or global name) *)
  | Bgscalar of string  (** global scalar, accessed as name[0] *)

(* Lowering context for one function. *)
type ctx = {
  func : func;
  opts : options;
  prog_arrays : (string, unit) Hashtbl.t;  (** global array names *)
  mutable cur : block;  (** block under construction *)
  mutable break_targets : label list;
  mutable continue_targets : label option list;
      (** one entry per break scope; [None] for switch scopes *)
  mutable local_counter : int;
}

(* During construction, [func.blocks] and each block's [instrs] are kept
   in reverse and flipped once at the end of [lower_function] — appending
   per instruction would be quadratic on the huge straight-line blocks
   full unrolling produces. *)
let new_block ctx =
  let l = fresh_label ctx.func in
  let b = { label = l; instrs = []; term = Ret None } in
  ctx.func.blocks <- b :: ctx.func.blocks;
  b

let emit ctx i = ctx.cur.instrs <- i :: ctx.cur.instrs

let set_term ctx t = ctx.cur.term <- t

let switch_to ctx b = ctx.cur <- b

(* ------------------------------------------------------------------ *)
(* Purity: an expression with no calls has no side effects in MinC.    *)
(* ------------------------------------------------------------------ *)

let rec pure = function
  | A.Int _ | A.Var _ -> true
  | A.Index (_, e) | A.Unary (_, e) -> pure e
  | A.Binary (_, a, b) -> pure a && pure b
  | A.Ternary (c, a, b) -> pure c && pure a && pure b
  | A.Call _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_ast = function
  | A.Add -> Add
  | A.Sub -> Sub
  | A.Mul -> Mul
  | A.Div -> Div
  | A.Mod -> Mod
  | A.Band -> And
  | A.Bor -> Or
  | A.Bxor -> Xor
  | A.Shl -> Shl
  | A.Shr -> Shr
  | A.Lt -> Slt
  | A.Le -> Sle
  | A.Gt -> Sgt
  | A.Ge -> Sge
  | A.Eq -> Seq
  | A.Ne -> Sne
  | A.Land | A.Lor -> invalid_arg "binop_of_ast: shortcircuit op"

let rec lower_expr ctx env (e : A.expr) : operand =
  match e with
  | A.Int n -> Imm n
  | A.Var v -> (
    match Smap.find_opt v env with
    | Some (Bslot s) ->
      let r = fresh_reg ctx.func in
      emit ctx (Slot_load (r, s));
      Reg r
    | Some (Bgscalar g) ->
      let r = fresh_reg ctx.func in
      emit ctx (Load (r, g, Imm 0));
      Reg r
    | Some (Barray _) -> errorf "array %s used as scalar" v
    | None -> errorf "unbound variable %s" v)
  | A.Index (a, idx) ->
    let name = resolve_array ctx env a in
    let i = lower_expr ctx env idx in
    let r = fresh_reg ctx.func in
    emit ctx (Load (r, name, i));
    Reg r
  | A.Unary (A.Neg, e) ->
    let v = lower_expr ctx env e in
    let r = fresh_reg ctx.func in
    emit ctx (Un (Neg, r, v));
    Reg r
  | A.Unary (A.Bnot, e) ->
    let v = lower_expr ctx env e in
    let r = fresh_reg ctx.func in
    emit ctx (Un (Not, r, v));
    Reg r
  | A.Unary (A.Lnot, e) ->
    let v = lower_expr ctx env e in
    let r = fresh_reg ctx.func in
    emit ctx (Bin (Seq, r, v, Imm 0));
    Reg r
  | A.Binary ((A.Land | A.Lor) as op, a, b)
    when ctx.opts.merge_conditionals && pure a && pure b ->
    (* compound conditionals: evaluate both sides, combine bitwise *)
    let va = lower_expr ctx env a in
    let vb = lower_expr ctx env b in
    let ba = fresh_reg ctx.func and bb = fresh_reg ctx.func in
    emit ctx (Bin (Sne, ba, va, Imm 0));
    emit ctx (Bin (Sne, bb, vb, Imm 0));
    let r = fresh_reg ctx.func in
    let bop = match op with A.Land -> And | _ -> Or in
    emit ctx (Bin (bop, r, Reg ba, Reg bb));
    Reg r
  | A.Binary (A.Land, a, b) ->
    (* short-circuit: r = a ? (b != 0) : 0 *)
    let r = fresh_reg ctx.func in
    let va = lower_expr ctx env a in
    let eval_b = new_block ctx in
    let skip = new_block ctx in
    let join = new_block ctx in
    set_term ctx (Br (va, eval_b.label, skip.label));
    switch_to ctx eval_b;
    let vb = lower_expr ctx env b in
    emit ctx (Bin (Sne, r, vb, Imm 0));
    set_term ctx (Jmp join.label);
    switch_to ctx skip;
    emit ctx (Mov (r, Imm 0));
    set_term ctx (Jmp join.label);
    switch_to ctx join;
    Reg r
  | A.Binary (A.Lor, a, b) ->
    let r = fresh_reg ctx.func in
    let va = lower_expr ctx env a in
    let eval_b = new_block ctx in
    let skip = new_block ctx in
    let join = new_block ctx in
    set_term ctx (Br (va, skip.label, eval_b.label));
    switch_to ctx eval_b;
    let vb = lower_expr ctx env b in
    emit ctx (Bin (Sne, r, vb, Imm 0));
    set_term ctx (Jmp join.label);
    switch_to ctx skip;
    emit ctx (Mov (r, Imm 1));
    set_term ctx (Jmp join.label);
    switch_to ctx join;
    Reg r
  | A.Binary (op, a, b) ->
    let va = lower_expr ctx env a in
    let vb = lower_expr ctx env b in
    let r = fresh_reg ctx.func in
    emit ctx (Bin (binop_of_ast op, r, va, vb));
    Reg r
  | A.Ternary (c, a, b) ->
    let r = fresh_reg ctx.func in
    let vc = lower_expr ctx env c in
    let then_b = new_block ctx in
    let else_b = new_block ctx in
    let join = new_block ctx in
    set_term ctx (Br (vc, then_b.label, else_b.label));
    switch_to ctx then_b;
    let va = lower_expr ctx env a in
    emit ctx (Mov (r, va));
    set_term ctx (Jmp join.label);
    switch_to ctx else_b;
    let vb = lower_expr ctx env b in
    emit ctx (Mov (r, vb));
    set_term ctx (Jmp join.label);
    switch_to ctx join;
    Reg r
  | A.Call (fn, args) -> (
    let vargs = List.map (lower_expr ctx env) args in
    match fn with
    | "print_int" ->
      (match vargs with
      | [ v ] -> emit ctx (Print_int v)
      | _ -> errorf "print_int arity");
      Imm 0
    | "print_char" ->
      (match vargs with
      | [ v ] -> emit ctx (Print_char v)
      | _ -> errorf "print_char arity");
      Imm 0
    | "input" ->
      let r = fresh_reg ctx.func in
      (match vargs with
      | [ v ] -> emit ctx (Read_input (r, v))
      | _ -> errorf "input arity");
      Reg r
    | "input_len" ->
      let r = fresh_reg ctx.func in
      emit ctx (Input_len r);
      Reg r
    | _ ->
      let r = fresh_reg ctx.func in
      emit ctx (Call (Some r, fn, vargs));
      Reg r)

and resolve_array ctx env a =
  match Smap.find_opt a env with
  | Some (Barray resolved) -> resolved
  | Some (Bslot _) | Some (Bgscalar _) -> errorf "scalar %s indexed" a
  | None ->
    if Hashtbl.mem ctx.prog_arrays a then a
    else errorf "unbound array %s" a

(* Lower an expression used only for its truth value into a branch. *)
let rec lower_cond ctx env (e : A.expr) ~(ltrue : label) ~(lfalse : label) =
  match e with
  | A.Binary (A.Land, a, b)
    when not (ctx.opts.merge_conditionals && pure a && pure b) ->
    let mid = new_block ctx in
    lower_cond ctx env a ~ltrue:mid.label ~lfalse;
    switch_to ctx mid;
    lower_cond ctx env b ~ltrue ~lfalse
  | A.Binary (A.Lor, a, b)
    when not (ctx.opts.merge_conditionals && pure a && pure b) ->
    let mid = new_block ctx in
    lower_cond ctx env a ~ltrue ~lfalse:mid.label;
    switch_to ctx mid;
    lower_cond ctx env b ~ltrue ~lfalse
  | A.Unary (A.Lnot, e) -> lower_cond ctx env e ~ltrue:lfalse ~lfalse:ltrue
  | _ ->
    let v = lower_expr ctx env e in
    set_term ctx (Br (v, ltrue, lfalse))

(* ------------------------------------------------------------------ *)
(* Vectorization pattern matching                                      *)
(* ------------------------------------------------------------------ *)

(* A counted loop [for (i = e0; i < bound; i++) body] qualifies for
   vectorization when every statement in [body] is either an element-wise
   array store [a[i] = e] or an add-reduction [acc += e], with [e] pure,
   indexing arrays only at exactly [i], and never reading [acc] except in
   its own reduction. *)

type vec_stmt =
  | Vmap of string * A.expr  (** a[i] = e *)
  | Vred of string * A.expr  (** acc += e *)

let rec vec_expr_ok ~ivar e =
  match e with
  | A.Int _ -> true
  | A.Var v -> v <> ivar  (* loop-invariant scalar; i itself not supported *)
  | A.Index (_, A.Var v) -> v = ivar
  | A.Index (_, _) -> false
  | A.Unary (A.Neg, e) -> vec_expr_ok ~ivar e
  | A.Unary (_, _) -> false
  | A.Binary ((A.Add | A.Sub | A.Mul | A.Band | A.Bor | A.Bxor), a, b) ->
    vec_expr_ok ~ivar a && vec_expr_ok ~ivar b
  | A.Binary (_, _, _) -> false
  | A.Ternary _ | A.Call _ -> false

let vars_of e =
  let acc = ref [] in
  let rec go = function
    | A.Int _ -> ()
    | A.Var v -> acc := v :: !acc
    | A.Index (_, i) -> go i
    | A.Unary (_, e) -> go e
    | A.Binary (_, a, b) ->
      go a;
      go b
    | A.Ternary (c, a, b) ->
      go c;
      go a;
      go b
    | A.Call (_, args) -> List.iter go args
  in
  go e;
  !acc

let classify_vec_stmt ~ivar (s : A.stmt) =
  match s with
  | A.Store (arr, A.Var v, e) when v = ivar && vec_expr_ok ~ivar e ->
    Some (Vmap (arr, e))
  | A.Assign (acc, A.Binary (A.Add, A.Var acc', e))
    when acc = acc' && acc <> ivar && vec_expr_ok ~ivar e
         && not (List.exists (fun v -> v = acc) (vars_of e)) ->
    Some (Vred (acc, e))
  | A.Decl _ | A.Array_decl _ | A.Assign _ | A.Store _ | A.If _ | A.While _
  | A.Do_while _ | A.For _ | A.Switch _ | A.Return _ | A.Break | A.Continue
  | A.Expr_stmt _ | A.Block _ ->
    None

let match_vectorizable ~init ~cond ~step ~body =
  let ivar_and_start =
    match init with
    | Some (A.Assign (i, e0)) | Some (A.Decl (i, Some e0)) -> Some (i, e0)
    | _ -> None
  in
  match ivar_and_start with
  | None -> None
  | Some (ivar, start) -> (
    let bound =
      match cond with
      | Some (A.Binary (A.Lt, A.Var v, b)) when v = ivar && pure b -> Some b
      | _ -> None
    in
    let step_ok =
      match step with
      | Some (A.Assign (v, A.Binary (A.Add, A.Var v', A.Int 1)))
        when v = ivar && v' = ivar ->
        true
      | _ -> false
    in
    match bound with
    | Some b when step_ok && pure start -> (
      let classified = List.map (classify_vec_stmt ~ivar) body in
      if body <> [] && List.for_all Option.is_some classified then
        (* each reduction target must not appear in any other statement *)
        let stmts = List.map Option.get classified in
        let red_targets =
          List.filter_map (function Vred (a, _) -> Some a | Vmap _ -> None) stmts
        in
        let uses_target t =
          List.exists
            (function
              | Vmap (_, e) -> List.mem t (vars_of e)
              | Vred (a, e) -> a <> t && List.mem t (vars_of e))
            stmts
        in
        if List.exists uses_target red_targets then None
        else Some (ivar, start, b, stmts)
      else None)
    | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let alloc_slot ctx =
  let s = ctx.func.nslots in
  ctx.func.nslots <- s + 1;
  s

let store_var ctx env name v =
  match Smap.find_opt name env with
  | Some (Bslot s) -> emit ctx (Slot_store (s, v))
  | Some (Bgscalar g) -> emit ctx (Store (g, Imm 0, v))
  | Some (Barray _) -> errorf "assignment to array %s" name
  | None -> errorf "assignment to unbound %s" name

(* Lower [e] as a 4-lane vector value; scalar subexpressions are splatted. *)
let rec lower_vec_expr ctx env ~iv (e : A.expr) : reg =
  match e with
  | A.Int n ->
    let v = fresh_vreg ctx.func in
    emit ctx (Vsplat (v, Imm n));
    v
  | A.Var x ->
    let s = lower_expr ctx env (A.Var x) in
    let v = fresh_vreg ctx.func in
    emit ctx (Vsplat (v, s));
    v
  | A.Index (a, A.Var _) ->
    let name = resolve_array ctx env a in
    let v = fresh_vreg ctx.func in
    emit ctx (Vload (v, name, Reg iv));
    v
  | A.Unary (A.Neg, e) ->
    let zero = fresh_vreg ctx.func in
    emit ctx (Vsplat (zero, Imm 0));
    let ve = lower_vec_expr ctx env ~iv e in
    let v = fresh_vreg ctx.func in
    emit ctx (Vbin (Sub, v, zero, ve));
    v
  | A.Binary (op, a, b) ->
    let va = lower_vec_expr ctx env ~iv a in
    let vb = lower_vec_expr ctx env ~iv b in
    let v = fresh_vreg ctx.func in
    emit ctx (Vbin (binop_of_ast op, v, va, vb));
    v
  | A.Index _ | A.Unary _ | A.Ternary _ | A.Call _ ->
    errorf "lower_vec_expr: rejected expression slipped through"

let rec lower_stmts ctx env stmts =
  ignore (List.fold_left (fun env s -> lower_stmt ctx env s) env stmts)

and lower_stmt ctx env (s : A.stmt) : binding Smap.t =
  match s with
  | A.Decl (name, init) ->
    let slot = alloc_slot ctx in
    let env = Smap.add name (Bslot slot) env in
    (match init with
    | None -> ()
    | Some e ->
      let v = lower_expr ctx env e in
      emit ctx (Slot_store (slot, v)));
    env
  | A.Array_decl (name, size, init) ->
    ctx.local_counter <- ctx.local_counter + 1;
    let resolved = Printf.sprintf "%s$%s$%d" ctx.func.fname name ctx.local_counter in
    ctx.func.local_arrays <- ctx.func.local_arrays @ [ (resolved, size, init) ];
    Smap.add name (Barray resolved) env
  | A.Assign (name, e) ->
    let v = lower_expr ctx env e in
    store_var ctx env name v;
    env
  | A.Store (arr, idx, e) ->
    let name = resolve_array ctx env arr in
    let vi = lower_expr ctx env idx in
    let v = lower_expr ctx env e in
    emit ctx (Store (name, vi, v));
    env
  | A.If (cond, then_s, else_s) ->
    let then_b = new_block ctx in
    if else_s = [] then begin
      let join = new_block ctx in
      lower_cond ctx env cond ~ltrue:then_b.label ~lfalse:join.label;
      switch_to ctx then_b;
      lower_stmts ctx env then_s;
      set_term ctx (Jmp join.label);
      switch_to ctx join
    end
    else begin
      let else_b = new_block ctx in
      let join = new_block ctx in
      lower_cond ctx env cond ~ltrue:then_b.label ~lfalse:else_b.label;
      switch_to ctx then_b;
      lower_stmts ctx env then_s;
      set_term ctx (Jmp join.label);
      switch_to ctx else_b;
      lower_stmts ctx env else_s;
      set_term ctx (Jmp join.label);
      switch_to ctx join
    end;
    env
  | A.While (cond, body) ->
    let header = new_block ctx in
    let body_b = new_block ctx in
    let exit_b = new_block ctx in
    set_term ctx (Jmp header.label);
    switch_to ctx header;
    lower_cond ctx env cond ~ltrue:body_b.label ~lfalse:exit_b.label;
    ctx.break_targets <- exit_b.label :: ctx.break_targets;
    ctx.continue_targets <- Some header.label :: ctx.continue_targets;
    switch_to ctx body_b;
    lower_stmts ctx env body;
    set_term ctx (Jmp header.label);
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    switch_to ctx exit_b;
    env
  | A.Do_while (body, cond) ->
    let body_b = new_block ctx in
    let cond_b = new_block ctx in
    let exit_b = new_block ctx in
    set_term ctx (Jmp body_b.label);
    ctx.break_targets <- exit_b.label :: ctx.break_targets;
    ctx.continue_targets <- Some cond_b.label :: ctx.continue_targets;
    switch_to ctx body_b;
    lower_stmts ctx env body;
    set_term ctx (Jmp cond_b.label);
    switch_to ctx cond_b;
    lower_cond ctx env cond ~ltrue:body_b.label ~lfalse:exit_b.label;
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    switch_to ctx exit_b;
    env
  | A.For (init, cond, step, body) -> (
    match
      if ctx.opts.vectorize then match_vectorizable ~init ~cond ~step ~body
      else None
    with
    | Some (ivar, start, bound, stmts) ->
      lower_vectorized ctx env ~ivar ~start ~bound stmts;
      env
    | None ->
      let env' =
        match init with
        | None -> env
        | Some s -> lower_stmt ctx env s
      in
      let header = new_block ctx in
      let body_b = new_block ctx in
      let step_b = new_block ctx in
      let exit_b = new_block ctx in
      set_term ctx (Jmp header.label);
      switch_to ctx header;
      (match cond with
      | None -> set_term ctx (Jmp body_b.label)
      | Some c -> lower_cond ctx env' c ~ltrue:body_b.label ~lfalse:exit_b.label);
      ctx.break_targets <- exit_b.label :: ctx.break_targets;
      ctx.continue_targets <- Some step_b.label :: ctx.continue_targets;
      switch_to ctx body_b;
      lower_stmts ctx env' body;
      set_term ctx (Jmp step_b.label);
      switch_to ctx step_b;
      (match step with
      | None -> ()
      | Some s -> ignore (lower_stmt ctx env' s));
      set_term ctx (Jmp header.label);
      ctx.break_targets <- List.tl ctx.break_targets;
      ctx.continue_targets <- List.tl ctx.continue_targets;
      switch_to ctx exit_b;
      env)
  | A.Switch (scrutinee, cases, default) ->
    let v = lower_expr ctx env scrutinee in
    let exit_b = new_block ctx in
    (* one block per case group, in source order, for fallthrough *)
    let case_blocks = List.map (fun c -> (c, new_block ctx)) cases in
    let default_block =
      match default with
      | None -> None
      | Some body -> Some (body, new_block ctx)
    in
    let table =
      List.concat_map
        (fun ((labels, _), blk) -> List.map (fun l -> (l, blk.label)) labels)
        case_blocks
    in
    let default_label =
      match default_block with
      | Some (_, blk) -> blk.label
      | None -> exit_b.label
    in
    set_term ctx (Switch (v, table, default_label));
    ctx.break_targets <- exit_b.label :: ctx.break_targets;
    ctx.continue_targets <- None :: ctx.continue_targets;
    (* fallthrough chain: each group falls into the next, last falls into
       default (or exit) *)
    let rec emit_groups groups =
      match groups with
      | [] -> ()
      | ((_, body), blk) :: rest ->
        let next_label =
          match rest with
          | (_, nb) :: _ -> nb.label
          | [] -> default_label
        in
        switch_to ctx blk;
        lower_stmts ctx env body;
        set_term ctx (Jmp next_label);
        emit_groups rest
    in
    emit_groups case_blocks;
    (match default_block with
    | None -> ()
    | Some (body, blk) ->
      switch_to ctx blk;
      lower_stmts ctx env body;
      set_term ctx (Jmp exit_b.label));
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    switch_to ctx exit_b;
    env
  | A.Return e ->
    let v = match e with None -> Imm 0 | Some e -> lower_expr ctx env e in
    set_term ctx (Ret (Some v));
    (* statements after return land in an unreachable block *)
    let dead = new_block ctx in
    switch_to ctx dead;
    env
  | A.Break -> (
    match ctx.break_targets with
    | target :: _ ->
      set_term ctx (Jmp target);
      let dead = new_block ctx in
      switch_to ctx dead;
      env
    | [] -> errorf "%s: break outside loop/switch" ctx.func.fname)
  | A.Continue -> (
    let rec find = function
      | Some target :: _ -> Some target
      | None :: rest -> find rest
      | [] -> None
    in
    match find ctx.continue_targets with
    | Some target ->
      set_term ctx (Jmp target);
      let dead = new_block ctx in
      switch_to ctx dead;
      env
    | None -> errorf "%s: continue outside loop" ctx.func.fname)
  | A.Expr_stmt e ->
    ignore (lower_expr ctx env e);
    env
  | A.Block body ->
    (* inner scope: declarations do not escape *)
    lower_stmts ctx env body;
    env

(* Emit:  i = start
          vec loop while i + 3 < bound (vector body, i += 4)
          scalar epilogue while i < bound *)
and lower_vectorized ctx env ~ivar ~start ~bound stmts =
  let islot = alloc_slot ctx in
  let env = Smap.add ivar (Bslot islot) env in
  let vstart = lower_expr ctx env start in
  emit ctx (Slot_store (islot, vstart));
  let vbound = lower_expr ctx env bound in
  let bound_reg = fresh_reg ctx.func in
  emit ctx (Mov (bound_reg, vbound));
  (* reduction accumulators: one vector register each, zero-initialized.
     The accumulator vregs must be stable across the loop, so allocate
     them up front. *)
  let reductions =
    List.filter_map
      (function Vred (acc, e) -> Some (acc, e, fresh_vreg ctx.func) | Vmap _ -> None)
      stmts
  in
  List.iter (fun (_, _, vr) -> emit ctx (Vsplat (vr, Imm 0))) reductions;
  let vheader = new_block ctx in
  let vbody = new_block ctx in
  let reduce_b = new_block ctx in
  let eheader = new_block ctx in
  let ebody = new_block ctx in
  let exit_b = new_block ctx in
  set_term ctx (Jmp vheader.label);
  (* vector header: i + 3 < bound ? *)
  switch_to ctx vheader;
  let i1 = fresh_reg ctx.func in
  emit ctx (Slot_load (i1, islot));
  let i3 = fresh_reg ctx.func in
  emit ctx (Bin (Add, i3, Reg i1, Imm 3));
  let c = fresh_reg ctx.func in
  emit ctx (Bin (Slt, c, Reg i3, Reg bound_reg));
  set_term ctx (Br (Reg c, vbody.label, reduce_b.label));
  (* vector body *)
  switch_to ctx vbody;
  let iv = fresh_reg ctx.func in
  emit ctx (Slot_load (iv, islot));
  List.iter
    (fun stmt ->
      match stmt with
      | Vmap (arr, e) ->
        let name = resolve_array ctx env arr in
        let v = lower_vec_expr ctx env ~iv e in
        emit ctx (Vstore (name, Reg iv, v))
      | Vred (acc, e) ->
        let _, _, vr = List.find (fun (a, _, _) -> a = acc) reductions in
        let v = lower_vec_expr ctx env ~iv e in
        emit ctx (Vbin (Add, vr, vr, v)))
    stmts;
  let inext = fresh_reg ctx.func in
  emit ctx (Bin (Add, inext, Reg iv, Imm 4));
  emit ctx (Slot_store (islot, Reg inext));
  set_term ctx (Jmp vheader.label);
  (* fold vector reductions into their scalar accumulators *)
  switch_to ctx reduce_b;
  List.iter
    (fun (acc, _, vr) ->
      let partial = fresh_reg ctx.func in
      emit ctx (Vreduce (Add, partial, vr));
      let cur = lower_expr ctx env (A.Var acc) in
      let sum = fresh_reg ctx.func in
      emit ctx (Bin (Add, sum, cur, Reg partial));
      store_var ctx env acc (Reg sum))
    reductions;
  set_term ctx (Jmp eheader.label);
  (* scalar epilogue: while (i < bound) body; i++ *)
  switch_to ctx eheader;
  let ie = fresh_reg ctx.func in
  emit ctx (Slot_load (ie, islot));
  let ce = fresh_reg ctx.func in
  emit ctx (Bin (Slt, ce, Reg ie, Reg bound_reg));
  set_term ctx (Br (Reg ce, ebody.label, exit_b.label));
  switch_to ctx ebody;
  List.iter
    (fun stmt ->
      match stmt with
      | Vmap (arr, e) ->
        ignore (lower_stmt ctx env (A.Store (arr, A.Var ivar, e)))
      | Vred (acc, e) ->
        ignore
          (lower_stmt ctx env
             (A.Assign (acc, A.Binary (A.Add, A.Var acc, e)))))
    stmts;
  let ie2 = fresh_reg ctx.func in
  emit ctx (Slot_load (ie2, islot));
  let ie3 = fresh_reg ctx.func in
  emit ctx (Bin (Add, ie3, Reg ie2, Imm 1));
  emit ctx (Slot_store (islot, Reg ie3));
  set_term ctx (Jmp eheader.label);
  switch_to ctx exit_b

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let lower_function opts prog_arrays global_scalars (f : A.func) : func =
  let nparams = List.length f.params in
  let func =
    {
      fname = f.fname;
      params = List.init nparams (fun i -> i);
      blocks = [];
      next_reg = nparams;
      next_vreg = 0;
      next_label = 0;
      nslots = 0;
      local_arrays = [];
    }
  in
  let ctx =
    {
      func;
      opts;
      prog_arrays;
      cur = { label = -1; instrs = []; term = Ret None };
      break_targets = [];
      continue_targets = [];
      local_counter = 0;
    }
  in
  let entry = new_block ctx in
  ctx.cur <- entry;
  (* -O0 shape: spill parameters to slots at entry *)
  let env =
    List.fold_left
      (fun env (idx, name) ->
        let slot = alloc_slot ctx in
        emit ctx (Slot_store (slot, Reg idx));
        Smap.add name (Bslot slot) env)
      Smap.empty
      (List.mapi (fun i n -> (i, n)) f.params)
  in
  let env =
    List.fold_left
      (fun env g -> Smap.add g (Bgscalar g) env)
      env global_scalars
  in
  (* globals that are arrays resolve through prog_arrays in resolve_array;
     but locals shadow them via env, which is exactly C scoping *)
  lower_stmts ctx env f.body;
  (* implicit return 0 at the end of the function *)
  set_term ctx (Ret (Some (Imm 0)));
  (* restore construction order (see [new_block]/[emit]) *)
  func.blocks <- List.rev func.blocks;
  List.iter (fun b -> b.instrs <- List.rev b.instrs) func.blocks;
  func

let lower_program ?(options = default_options) (p : A.program) : program =
  let prog_arrays = Hashtbl.create 16 in
  let global_scalars = ref [] in
  let globals =
    List.map
      (fun g ->
        match g with
        | A.Gvar (n, v) ->
          global_scalars := n :: !global_scalars;
          (n, Gscalar v)
        | A.Garr (n, size, init) ->
          Hashtbl.replace prog_arrays n ();
          (n, Garray (size, init)))
      p.globals
  in
  let funcs =
    List.map
      (fun f -> lower_function options prog_arrays !global_scalars f)
      p.funcs
  in
  (* local arrays become per-function frame data; register their resolved
     names so codegen and the VM can find them.  Nothing to do here: they
     live in [func.local_arrays]. *)
  { globals; funcs }
