(** Reference interpreter for VIR programs.

    Used for differential testing: a program's observable behaviour (its
    output stream and main's return value) must be identical before and
    after every optimization pass, and must match the VX virtual machine
    running the generated binary.  This is how BinTuner's requirement that
    "all outputs pass the test cases shipped with the dataset" is enforced
    in the reproduction. *)

type output_item = Out_int of int | Out_char of int

type result = {
  output : output_item list;
  return_value : int;
  steps : int;  (** dynamic instruction count *)
}

exception Trap of string
(** Out-of-bounds access, unknown function, stack overflow. *)

exception Out_of_fuel

val run : ?fuel:int -> Ir.program -> input:int array -> result
(** Execute [main].  [fuel] (default 50 million) bounds the dynamic
    instruction count. *)

val output_to_string : output_item list -> string
(** Render the output stream for comparison: ints as decimal + newline,
    chars literally. *)
