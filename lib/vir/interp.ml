open Ir

type output_item = Out_int of int | Out_char of int

type result = {
  output : output_item list;
  return_value : int;
  steps : int;
}

exception Trap of string

exception Out_of_fuel

let trapf fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type state = {
  globals : (string, int array) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  input : int array;
  mutable out_rev : output_item list;
  mutable fuel : int;
  mutable steps : int;
}

let tick st =
  st.steps <- st.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let init_array size init =
  let a = Array.make size 0 in
  List.iteri (fun i v -> if i < size then a.(i) <- v) init;
  a

(* One call frame: register file, vector registers, slots, local arrays. *)
type frame = {
  regs : (int, int) Hashtbl.t;
  vregs : (int, int array) Hashtbl.t;
  slots : int array;
  locals : (string, int array) Hashtbl.t;
}

let max_depth = 2000

let rec call st depth fname args =
  if depth > max_depth then trapf "stack overflow calling %s" fname;
  let f =
    match Hashtbl.find_opt st.funcs fname with
    | Some f -> f
    | None -> trapf "call to unknown function %s" fname
  in
  if List.length args <> List.length f.params then
    trapf "%s: arity mismatch" fname;
  let frame =
    {
      regs = Hashtbl.create 64;
      vregs = Hashtbl.create 8;
      slots = Array.make (max f.nslots 1) 0;
      locals = Hashtbl.create 4;
    }
  in
  List.iter2 (fun p v -> Hashtbl.replace frame.regs p v) f.params args;
  List.iter
    (fun (name, size, init) ->
      Hashtbl.replace frame.locals name (init_array size init))
    f.local_arrays;
  let reg frame r =
    match Hashtbl.find_opt frame.regs r with Some v -> v | None -> 0
  in
  let vreg frame r =
    match Hashtbl.find_opt frame.vregs r with
    | Some v -> v
    | None -> Array.make 4 0
  in
  let operand frame = function Reg r -> reg frame r | Imm n -> n in
  let array_of frame name =
    match Hashtbl.find_opt frame.locals name with
    | Some a -> a
    | None -> (
      match Hashtbl.find_opt st.globals name with
      | Some a -> a
      | None -> trapf "%s: unknown array %s" fname name)
  in
  let load frame name idx =
    let a = array_of frame name in
    if idx < 0 || idx >= Array.length a then
      trapf "%s: %s[%d] out of bounds (size %d)" fname name idx
        (Array.length a);
    a.(idx)
  in
  let store frame name idx v =
    let a = array_of frame name in
    if idx < 0 || idx >= Array.length a then
      trapf "%s: %s[%d] out of bounds (size %d)" fname name idx
        (Array.length a);
    a.(idx) <- v
  in
  let exec_instr frame i =
    tick st;
    match i with
    | Bin (op, d, a, b) ->
      Hashtbl.replace frame.regs d
        (eval_binop op (operand frame a) (operand frame b))
    | Un (op, d, a) -> Hashtbl.replace frame.regs d (eval_unop op (operand frame a))
    | Mov (d, a) -> Hashtbl.replace frame.regs d (operand frame a)
    | Select (d, c, a, b) ->
      Hashtbl.replace frame.regs d
        (if operand frame c <> 0 then operand frame a else operand frame b)
    | Load (d, g, idx) ->
      Hashtbl.replace frame.regs d (load frame g (operand frame idx))
    | Store (g, idx, v) -> store frame g (operand frame idx) (operand frame v)
    | Slot_load (d, s) ->
      if s >= Array.length frame.slots then trapf "%s: bad slot %d" fname s;
      Hashtbl.replace frame.regs d frame.slots.(s)
    | Slot_store (s, v) ->
      if s >= Array.length frame.slots then trapf "%s: bad slot %d" fname s;
      frame.slots.(s) <- operand frame v
    | Call (dst, callee, cargs) ->
      let vals = List.map (operand frame) cargs in
      let r = call st (depth + 1) callee vals in
      (match dst with
      | Some d -> Hashtbl.replace frame.regs d r
      | None -> ())
    | Vload (d, g, idx) ->
      let base = operand frame idx in
      Hashtbl.replace frame.vregs d
        (Array.init 4 (fun k -> load frame g (base + k)))
    | Vstore (g, idx, v) ->
      let base = operand frame idx in
      let vec = vreg frame v in
      for k = 0 to 3 do
        store frame g (base + k) vec.(k)
      done
    | Vbin (op, d, a, b) ->
      let va = vreg frame a and vb = vreg frame b in
      Hashtbl.replace frame.vregs d
        (Array.init 4 (fun k -> eval_binop op va.(k) vb.(k)))
    | Vsplat (d, v) ->
      Hashtbl.replace frame.vregs d (Array.make 4 (operand frame v))
    | Vpack (d, ops) ->
      let vals = List.map (operand frame) ops in
      if List.length vals <> 4 then trapf "%s: vpack arity" fname;
      Hashtbl.replace frame.vregs d (Array.of_list vals)
    | Vreduce (op, d, v) ->
      let vec = vreg frame v in
      Hashtbl.replace frame.regs d
        (eval_binop op (eval_binop op vec.(0) vec.(1))
           (eval_binop op vec.(2) vec.(3)))
    | Print_int v -> st.out_rev <- Out_int (operand frame v) :: st.out_rev
    | Print_char v -> st.out_rev <- Out_char (operand frame v) :: st.out_rev
    | Read_input (d, idx) ->
      let i = operand frame idx in
      let v =
        if i >= 0 && i < Array.length st.input then st.input.(i) else 0
      in
      Hashtbl.replace frame.regs d v
    | Input_len d -> Hashtbl.replace frame.regs d (Array.length st.input)
  in
  let block_table = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_table b.label b) f.blocks;
  let find_block l =
    match Hashtbl.find_opt block_table l with
    | Some b -> b
    | None -> trapf "%s: jump to unknown block L%d" fname l
  in
  let rec run_block b =
    List.iter (exec_instr frame) b.instrs;
    tick st;
    match b.term with
    | Ret None -> 0
    | Ret (Some v) -> operand frame v
    | Jmp l -> run_block (find_block l)
    | Br (c, t, e) ->
      run_block (find_block (if operand frame c <> 0 then t else e))
    | Loop_branch (r, body, exit_) ->
      let v = reg frame r - 1 in
      Hashtbl.replace frame.regs r v;
      run_block (find_block (if v <> 0 then body else exit_))
    | Switch (v, cases, default) ->
      let x = operand frame v in
      let target =
        match List.assoc_opt x cases with Some l -> l | None -> default
      in
      run_block (find_block target)
    | Tail_call (callee, cargs) ->
      let vals = List.map (operand frame) cargs in
      call st (depth + 1) callee vals
  in
  run_block (entry_block f)

let run ?(fuel = 50_000_000) (p : program) ~input =
  let st =
    {
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      input;
      out_rev = [];
      fuel;
      steps = 0;
    }
  in
  List.iter
    (fun (name, g) ->
      match g with
      | Gscalar v -> Hashtbl.replace st.globals name [| v |]
      | Garray (size, init) -> Hashtbl.replace st.globals name (init_array size init))
    p.globals;
  List.iter (fun f -> Hashtbl.replace st.funcs f.fname f) p.funcs;
  let ret = call st 0 "main" [] in
  { output = List.rev st.out_rev; return_value = ret; steps = st.steps }

let output_to_string items =
  let b = Buffer.create 64 in
  List.iter
    (function
      | Out_int n ->
        Buffer.add_string b (string_of_int n);
        Buffer.add_char b '\n'
      | Out_char c -> Buffer.add_char b (Char.chr (c land 0xFF)))
    items;
  Buffer.contents b
