(** Lowering from the MinC AST to VIR.

    Lowering produces deliberately naive, -O0-shaped code: every local
    scalar (including parameters) lives in a frame slot and is re-loaded
    around each use, booleans are materialized, and all control flow uses
    explicit branches.  The optimization passes then earn their
    differences.

    Two frontend decisions are themselves flag-controlled because they
    cannot be recovered later:
    - [merge_conditionals]: evaluate pure [&&]/[||] operands bitwise
      instead of short-circuiting, merging basic blocks (the compound-
      conditionals effect of the paper's Figure 2a);
    - [vectorize]: rewrite eligible counted [for] loops (element-wise map
      and add-reduction patterns) into 4-lane vector code with a scalar
      epilogue (the loop-vectorization effect of Figure 3c). *)

type options = {
  merge_conditionals : bool;
  vectorize : bool;
}

val default_options : options
(** Both off: plain -O0 lowering. *)

exception Error of string

val lower_program : ?options:options -> Minic.Ast.program -> Ir.program
(** Lower a checked program (see {!Minic.Sema.analyze}).  Raises {!Error}
    on constructs Sema admits but lowering rejects (e.g. [continue]
    directly inside a [switch] with no enclosing loop). *)
