(* VIR: the three-address-code intermediate representation sitting between
   the MinC frontend and the VX instruction selector.

   Design notes:
   - Virtual registers are unlimited non-negative ints; the register
     allocator maps them to machine registers later.
   - Not SSA.  The frontend lowers every MinC local scalar to a frame
     *slot* with explicit [Slot_load]/[Slot_store] — the boilerplate code
     shape of an -O0 compile.  The mem2reg pass later promotes each slot
     to a dedicated virtual register, and local value numbering cleans up
     the copies; optimization levels therefore differ structurally, as in
     a real compiler.
   - Blocks are kept in layout order: the order of [func.blocks] is the
     order the code generator emits them in, so block-reordering passes
     change the binary.
   - Vector instructions model the 4-lane SSE code produced by the
     vectorization passes. *)

type reg = int

type label = int

type operand = Reg of reg | Imm of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr
  (* comparisons produce 0/1 *)
  | Slt
  | Sle
  | Sgt
  | Sge
  | Seq
  | Sne

type unop = Neg | Not

type instr =
  | Bin of binop * reg * operand * operand
  | Un of unop * reg * operand
  | Mov of reg * operand
  | Select of reg * operand * operand * operand
      (** [Select (dst, cond, a, b)]: dst := cond ≠ 0 ? a : b — the
          branch-free form produced by if-conversion (cmov). *)
  | Load of reg * string * operand  (** dst := mem\[array + idx\] *)
  | Store of string * operand * operand  (** mem\[array + idx\] := v *)
  | Slot_load of reg * int  (** dst := frame slot *)
  | Slot_store of int * operand
  | Call of reg option * string * operand list
  | Vload of reg * string * operand
      (** 4-lane vector load from array at idx..idx+3; dst is a vector
          virtual register (separate namespace from scalar regs). *)
  | Vstore of string * operand * reg
  | Vbin of binop * reg * reg * reg
  | Vsplat of reg * operand  (** broadcast scalar to 4 lanes *)
  | Vpack of reg * operand list
      (** build a 4-lane vector from 4 scalar operands (SLP vectorizer) *)
  | Vreduce of binop * reg * reg  (** horizontal reduce vector to scalar *)
  | Print_int of operand
  | Print_char of operand
  | Read_input of reg * operand
  | Input_len of reg

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of operand * label * label  (** cond ≠ 0 → first target *)
  | Switch of operand * (int * label) list * label
  | Tail_call of string * operand list
  | Loop_branch of reg * label * label
      (** [Loop_branch (counter, body, exit)]: counter := counter − 1;
          branch to body if counter ≠ 0 — the x86 [loop] instruction,
          produced by the branch-count-reg pass.  Does not set flags. *)

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : reg list;
  mutable blocks : block list;  (** layout order; head is the entry *)
  mutable next_reg : int;
  mutable next_vreg : int;
  mutable next_label : int;
  mutable nslots : int;
  mutable local_arrays : (string * int * int list) list;
      (** per-function arrays spilled into the frame: name, size, init *)
}

type global_init = Gscalar of int | Garray of int * int list

type program = {
  globals : (string * global_init) list;
  mutable funcs : func list;
}

(* ------------------------------------------------------------------ *)
(* Constructors / fresh names                                          *)
(* ------------------------------------------------------------------ *)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_vreg f =
  let r = f.next_vreg in
  f.next_vreg <- r + 1;
  r

let fresh_label f =
  let l = f.next_label in
  f.next_label <- l + 1;
  l

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "find_block: %s has no L%d" f.fname label)

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("entry_block: empty function " ^ f.fname)

(* ------------------------------------------------------------------ *)
(* CFG structure                                                       *)
(* ------------------------------------------------------------------ *)

let successors term =
  match term with
  | Ret _ | Tail_call _ -> []
  | Jmp l -> [ l ]
  | Br (_, a, b) -> [ a; b ]
  | Loop_branch (_, a, b) -> [ a; b ]
  | Switch (_, cases, default) ->
    List.sort_uniq compare (default :: List.map snd cases)

let predecessors f =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.label :: cur))
        (successors b.term))
    f.blocks;
  preds

let edge_count f =
  List.fold_left (fun acc b -> acc + List.length (successors b.term)) 0 f.blocks

(* Remap the targets of a terminator. *)
let map_targets g = function
  | Ret v -> Ret v
  | Tail_call (n, args) -> Tail_call (n, args)
  | Jmp l -> Jmp (g l)
  | Br (c, a, b) -> Br (c, g a, g b)
  | Loop_branch (r, a, b) -> Loop_branch (r, g a, g b)
  | Switch (v, cases, d) ->
    Switch (v, List.map (fun (k, l) -> (k, g l)) cases, g d)

(* ------------------------------------------------------------------ *)
(* Operand substitution (the rewrite machinery shared by the           *)
(* constant-propagating and value-numbering passes)                    *)
(* ------------------------------------------------------------------ *)

(* Rewrite every operand *read* of an instruction.  Destinations and the
   vector-register namespace are left alone: [g] maps values, not names. *)
let map_operands g = function
  | Bin (op, d, a, b) -> Bin (op, d, g a, g b)
  | Un (op, d, a) -> Un (op, d, g a)
  | Mov (d, a) -> Mov (d, g a)
  | Select (d, c, a, b) -> Select (d, g c, g a, g b)
  | Load (d, arr, idx) -> Load (d, arr, g idx)
  | Store (arr, idx, v) -> Store (arr, g idx, g v)
  | Slot_load _ as i -> i
  | Slot_store (s, v) -> Slot_store (s, g v)
  | Call (d, f, args) -> Call (d, f, List.map g args)
  | Vload (d, arr, idx) -> Vload (d, arr, g idx)
  | Vstore (arr, idx, v) -> Vstore (arr, g idx, v)
  | Vbin _ as i -> i
  | Vsplat (d, v) -> Vsplat (d, g v)
  | Vpack (d, vs) -> Vpack (d, List.map g vs)
  | Vreduce _ as i -> i
  | Print_int v -> Print_int (g v)
  | Print_char v -> Print_char (g v)
  | Read_input (d, idx) -> Read_input (d, g idx)
  | Input_len _ as i -> i

(* Rewrite the operand reads of a terminator.  [Loop_branch] is excluded:
   its counter is a read-modify-write register, not a value read. *)
let term_map_operands g = function
  | Ret (Some v) -> Ret (Some (g v))
  | (Ret None | Jmp _ | Loop_branch _) as t -> t
  | Br (c, a, b) -> Br (g c, a, b)
  | Switch (v, cases, d) -> Switch (g v, cases, d)
  | Tail_call (f, args) -> Tail_call (f, List.map g args)

(* ------------------------------------------------------------------ *)
(* Register use/def traversal                                          *)
(* ------------------------------------------------------------------ *)

let operand_reg = function Reg r -> Some r | Imm _ -> None

let instr_uses = function
  | Bin (_, _, a, b) -> List.filter_map operand_reg [ a; b ]
  | Un (_, _, a) | Mov (_, a) -> List.filter_map operand_reg [ a ]
  | Select (_, c, a, b) -> List.filter_map operand_reg [ c; a; b ]
  | Load (_, _, idx) -> List.filter_map operand_reg [ idx ]
  | Store (_, idx, v) -> List.filter_map operand_reg [ idx; v ]
  | Slot_load (_, _) -> []
  | Slot_store (_, v) -> List.filter_map operand_reg [ v ]
  | Call (_, _, args) -> List.filter_map operand_reg args
  | Vload (_, _, idx) -> List.filter_map operand_reg [ idx ]
  | Vstore (_, idx, _) -> List.filter_map operand_reg [ idx ]
  | Vbin (_, _, _, _) | Vreduce (_, _, _) -> []
  | Vsplat (_, v) -> List.filter_map operand_reg [ v ]
  | Vpack (_, vs) -> List.filter_map operand_reg vs
  | Print_int v | Print_char v -> List.filter_map operand_reg [ v ]
  | Read_input (_, idx) -> List.filter_map operand_reg [ idx ]
  | Input_len _ -> []

let instr_def = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mov (d, _) | Select (d, _, _, _)
  | Load (d, _, _) | Slot_load (d, _) | Read_input (d, _) | Input_len d ->
    Some d
  | Call (d, _, _) -> d
  | Vreduce (_, d, _) -> Some d
  | Store _ | Slot_store _ | Vload _ | Vstore _ | Vbin _ | Vsplat _
  | Vpack _ | Print_int _ | Print_char _ ->
    None

(* Vector register def/use (separate namespace). *)
let instr_vuses = function
  | Vstore (_, _, v) -> [ v ]
  | Vbin (_, _, a, b) -> [ a; b ]
  | Vreduce (_, _, v) -> [ v ]
  | Bin _ | Un _ | Mov _ | Select _ | Load _ | Store _ | Slot_load _
  | Slot_store _ | Call _ | Vload _ | Vsplat _ | Vpack _ | Print_int _
  | Print_char _ | Read_input _ | Input_len _ ->
    []

let instr_vdef = function
  | Vload (d, _, _) | Vbin (_, d, _, _) | Vsplat (d, _) | Vpack (d, _) ->
    Some d
  | Bin _ | Un _ | Mov _ | Select _ | Load _ | Store _ | Slot_load _
  | Slot_store _ | Call _ | Vstore _ | Vreduce _ | Print_int _
  | Print_char _ | Read_input _ | Input_len _ ->
    None

let term_uses = function
  | Ret (Some v) -> List.filter_map operand_reg [ v ]
  | Ret None -> []
  | Jmp _ -> []
  | Br (c, _, _) -> List.filter_map operand_reg [ c ]
  | Loop_branch (r, _, _) -> [ r ]
  | Switch (v, _, _) -> List.filter_map operand_reg [ v ]
  | Tail_call (_, args) -> List.filter_map operand_reg args

(* Does executing this instruction have an effect beyond writing its
   destination register?  (Used by dead-code elimination.) *)
let instr_has_side_effect = function
  | Store _ | Slot_store _ | Call _ | Vstore _ | Print_int _ | Print_char _
    ->
    true
  | Bin _ | Un _ | Mov _ | Select _ | Load _ | Slot_load _ | Vload _
  | Vbin _ | Vsplat _ | Vpack _ | Vreduce _ | Read_input _ | Input_len _ ->
    false

(* ------------------------------------------------------------------ *)
(* Evaluation of pure operators (shared by passes, IR interp, VM)      *)
(* ------------------------------------------------------------------ *)

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Sgt -> if a > b then 1 else 0
  | Sge -> if a >= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

let eval_unop op a = match op with Neg -> -a | Not -> lnot a

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Seq -> "seq"
  | Sne -> "sne"

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm n -> string_of_int n

let instr_to_string i =
  let op = operand_to_string in
  match i with
  | Bin (b, d, x, y) ->
    Printf.sprintf "r%d = %s %s, %s" d (binop_name b) (op x) (op y)
  | Un (Neg, d, x) -> Printf.sprintf "r%d = neg %s" d (op x)
  | Un (Not, d, x) -> Printf.sprintf "r%d = not %s" d (op x)
  | Mov (d, x) -> Printf.sprintf "r%d = %s" d (op x)
  | Select (d, c, a, b) ->
    Printf.sprintf "r%d = select %s, %s, %s" d (op c) (op a) (op b)
  | Load (d, g, idx) -> Printf.sprintf "r%d = load %s[%s]" d g (op idx)
  | Store (g, idx, v) -> Printf.sprintf "store %s[%s], %s" g (op idx) (op v)
  | Slot_load (d, s) -> Printf.sprintf "r%d = slot%d" d s
  | Slot_store (s, v) -> Printf.sprintf "slot%d = %s" s (op v)
  | Call (Some d, f, args) ->
    Printf.sprintf "r%d = call %s(%s)" d f (String.concat ", " (List.map op args))
  | Call (None, f, args) ->
    Printf.sprintf "call %s(%s)" f (String.concat ", " (List.map op args))
  | Vload (d, g, idx) -> Printf.sprintf "v%d = vload %s[%s]" d g (op idx)
  | Vstore (g, idx, v) -> Printf.sprintf "vstore %s[%s], v%d" g (op idx) v
  | Vbin (b, d, x, y) ->
    Printf.sprintf "v%d = v%s v%d, v%d" d (binop_name b) x y
  | Vsplat (d, x) -> Printf.sprintf "v%d = vsplat %s" d (op x)
  | Vpack (d, xs) ->
    Printf.sprintf "v%d = vpack %s" d (String.concat ", " (List.map op xs))
  | Vreduce (b, d, v) -> Printf.sprintf "r%d = vreduce_%s v%d" d (binop_name b) v
  | Print_int v -> Printf.sprintf "print_int %s" (op v)
  | Print_char v -> Printf.sprintf "print_char %s" (op v)
  | Read_input (d, idx) -> Printf.sprintf "r%d = input[%s]" d (op idx)
  | Input_len d -> Printf.sprintf "r%d = input_len" d

let term_to_string t =
  let op = operand_to_string in
  match t with
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (op v)
  | Jmp l -> Printf.sprintf "jmp L%d" l
  | Br (c, a, b) -> Printf.sprintf "br %s, L%d, L%d" (op c) a b
  | Loop_branch (r, a, b) -> Printf.sprintf "loop r%d, L%d, L%d" r a b
  | Switch (v, cases, d) ->
    Printf.sprintf "switch %s [%s] default L%d" (op v)
      (String.concat "; "
         (List.map (fun (k, l) -> Printf.sprintf "%d→L%d" k l) cases))
      d
  | Tail_call (f, args) ->
    Printf.sprintf "tailcall %s(%s)" f (String.concat ", " (List.map op args))

let func_to_string f =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "func %s(%s) slots=%d\n" f.fname
       (String.concat ", " (List.map (Printf.sprintf "r%d") f.params))
       f.nslots);
  List.iter
    (fun blk ->
      Buffer.add_string b (Printf.sprintf "L%d:\n" blk.label);
      List.iter
        (fun i -> Buffer.add_string b ("  " ^ instr_to_string i ^ "\n"))
        blk.instrs;
      Buffer.add_string b ("  " ^ term_to_string blk.term ^ "\n"))
    f.blocks;
  Buffer.contents b

let program_to_string p =
  String.concat "\n" (List.map func_to_string p.funcs)

(* ------------------------------------------------------------------ *)
(* Size measures                                                       *)
(* ------------------------------------------------------------------ *)

let func_instr_count f =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

let program_instr_count p =
  List.fold_left (fun acc f -> acc + func_instr_count f) 0 p.funcs
