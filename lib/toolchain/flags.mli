(** Optimization flag universes for the two compiler profiles.

    Each profile ("gcc-10.2" and "llvm-11.0") defines its own set of
    boolean flags, the subsets enabled by the [-O1/-O2/-O3/-Os] presets
    (the [-O3] preset covers well under half of the universe, as the
    paper emphasizes), and the dependency / conflict constraints between
    flags (e.g. [-fpartial-inlining] has an effect only when
    [-finline-functions] is on; [-mstackrealign] conflicts with
    [-fomit-frame-pointer]).

    A *flag vector* is a bool array indexed like [flags].  BinTuner's
    genetic algorithm mutates flag vectors; {!Constraints} validates and
    repairs them with the SAT solver. *)

type flag = {
  name : string;
  apply : Config.t -> Config.t;
  description : string;
}

type constraint_decl =
  | Requires of string * string  (** first needs second *)
  | Conflicts of string * string

type profile = {
  profile_name : string;
  flags : flag array;
  constraints : constraint_decl list;
  preset_o1 : bool array;
  preset_o2 : bool array;
  preset_o3 : bool array;
  preset_os : bool array;
}

val gcc : profile

val llvm : profile

val profiles : profile list

val find : string -> profile
(** Look up by name ("gcc-10.2" / "llvm-11.0").  Raises [Not_found]. *)

val flag_index : profile -> string -> int
(** Index of a named flag.  Raises [Not_found]. *)

val resolve : profile -> bool array -> Config.t
(** Build the compiler configuration for a flag vector: start from the
    -O1 core (register promotion and cleanups always run when compiling
    with an explicit flag vector, as in a real compiler) and apply every
    enabled flag in order. *)

val preset : profile -> string -> bool array option
(** ["O1"], ["O2"], ["O3"], ["Os"] — the named presets as flag vectors.
    ["O0"] is not a flag vector (see {!Pipeline.compile_preset}). *)

val preset_names : string list
(** ["O0"; "O1"; "O2"; "O3"; "Os"]. *)
