module AO = Passes.Ast_opt
module IO = Passes.Ir_opt
module C = Passes.Cleanup

(* [tpass] times one whole-program AST pass; [fpass] times one IR pass
   over one function.  Both are plain pass-throughs when the global
   telemetry instance is disabled (the default). *)
let tpass name f ast = Telemetry.with_span ("pass." ^ name) (fun () -> f ast)

let fpass name f func =
  Telemetry.with_span ("pass." ^ name) (fun () -> f func)

(* --- IR verification gate (CLI --verify-ir, bench -verify) --- *)

let verify_default = ref false

exception Verification_failed of string

(* Test-only: after the named pass runs on a function, apply the mutation.
   Lets the test suite plant a miscompile inside a specific pass and assert
   the verifier attributes the failure to that pass name. *)
let test_break : (string * (Vir.Ir.func -> unit)) option ref = ref None

let verify_failed ~pass ~where detail =
  raise
    (Verification_failed
       (Printf.sprintf "IR verification failed after pass '%s'%s:\n%s" pass
          where detail))

let check_program ~verify ~where pass ir =
  if verify then
    Telemetry.with_span "verify.ir" (fun () ->
        match Analysis.Verifier.verify_program ir with
        | [] -> ()
        | errs ->
          verify_failed ~pass ~where (Analysis.Verifier.errors_to_string errs))

let check_func ~verify ~where pass ir f =
  (match !test_break with
  | Some (name, mutate) when name = pass -> mutate f
  | Some _ | None -> ());
  if verify then
    Telemetry.with_span "verify.ir" (fun () ->
        match Analysis.Verifier.verify_func ir f with
        | [] -> ()
        | errs ->
          verify_failed ~pass ~where (Analysis.Verifier.errors_to_string errs))

(* --- the incremental-compilation seam --- *)

type snapshot_store = {
  find : string -> string option;
  store : string -> string -> unit;
}

(* What flows between steps.  Both constructors carry closure-free plain
   data, so a stage snapshot is one [Marshal] round-trip and restoring it
   yields a fresh deep copy no other compile aliases. *)
type stage =
  | Ast_stage of Minic.Ast.program
  | Ir_stage of Vir.Ir.program

(* One pipeline step.  [skey] is the step's stable identity — the pass
   name plus every parameter that changes its behaviour — and is all the
   prefix keys hash, so two flag vectors that agree on a prefix of
   resolved steps share that prefix's snapshots no matter how their raw
   bits differ. *)
type step = {
  skey : string;
  run : stage -> stage;
}

(* The configuration, flattened to its canonical step list: AST passes in
   the fixed order, lowering, then each enabled IR pass applied to every
   function (pass-major, not function-major — so a whole-program state
   exists after every pass and can be snapshotted), then the program-level
   function reorder.  Codegen is not a step; it is keyed separately by
   {!compile} because its inputs (arch, codegen options, labels) are not
   part of the IR prefix. *)
let plan ~verify ~where (cfg : Config.t) : step list =
  let steps = ref [] in
  let add skey run = steps := { skey; run } :: !steps in
  let ast_step name skey f =
    add skey (fun st ->
        match st with
        | Ast_stage a -> Ast_stage (tpass name f a)
        | Ir_stage _ -> invalid_arg "Pipeline: AST step after lowering")
  in
  let ir_step name skey pass =
    add skey (fun st ->
        match st with
        | Ir_stage ir ->
          List.iter
            (fun f ->
              fpass name pass f;
              check_func ~verify ~where name ir f)
            ir.Vir.Ir.funcs;
          Ir_stage ir
        | Ast_stage _ -> invalid_arg "Pipeline: IR step before lowering")
  in
  (* --- AST-level, in a fixed canonical order --- *)
  if cfg.instrument then ast_step "instrument" "instrument" AO.instrument;
  if cfg.inline_small || cfg.inline_big || cfg.expand_builtins then
    ast_step "normalize_calls" "normalize_calls" AO.normalize_calls;
  if cfg.expand_builtins then
    ast_step "expand_builtins" "expand_builtins" AO.expand_builtins;
  if cfg.inline_big then
    ast_step "inline"
      (Printf.sprintf "inline:%d:%d" cfg.inline_big_threshold cfg.inline_rounds)
      (AO.inline ~max_size:cfg.inline_big_threshold ~rounds:cfg.inline_rounds)
  else if cfg.inline_small then
    ast_step "inline"
      (Printf.sprintf "inline:%d:%d" cfg.inline_small_threshold
         cfg.inline_rounds)
      (AO.inline ~max_size:cfg.inline_small_threshold ~rounds:cfg.inline_rounds);
  if cfg.unswitch then ast_step "unswitch" "unswitch" AO.unswitch;
  if cfg.distribute then ast_step "distribute" "distribute" AO.distribute;
  if cfg.unroll_and_jam then
    ast_step "unroll_and_jam" "unroll_and_jam" AO.unroll_and_jam;
  if cfg.unroll then
    ast_step "unroll"
      (Printf.sprintf "unroll:%d:%d" cfg.unroll_factor cfg.full_unroll_limit)
      (AO.unroll ~factor:cfg.unroll_factor ~full_limit:cfg.full_unroll_limit);
  if cfg.peel then ast_step "peel" "peel" AO.peel;
  (* --- lowering --- *)
  add
    (Printf.sprintf "lower:%b:%b" cfg.merge_conditionals cfg.vectorize)
    (fun st ->
      match st with
      | Ast_stage a ->
        let ir =
          Telemetry.with_span "pass.lower" (fun () ->
              Vir.Lower.lower_program
                ~options:
                  {
                    Vir.Lower.merge_conditionals = cfg.merge_conditionals;
                    vectorize = cfg.vectorize;
                  }
                a)
        in
        check_program ~verify ~where "lower" ir;
        Ir_stage ir
      | Ir_stage _ -> invalid_arg "Pipeline: lowering after lowering");
  (* --- IR-level --- *)
  (* even -O0 emits structurally merged straight-line code: trivial
     jump chains from lowering never survive a real compiler *)
  ir_step "simplify_cfg" "simplify_cfg" C.simplify_cfg;
  if cfg.baseline then ir_step "baseline" "baseline" C.run_baseline;
  if cfg.sccp then ir_step "sccp" "sccp" Passes.Sccp.run;
  if cfg.strength_reduce then begin
    ir_step "strength_reduce" "strength_reduce" IO.strength_reduce;
    if cfg.baseline then begin
      ir_step "lvn" "lvn" C.lvn;
      ir_step "dce" "dce" C.dce
    end
  end;
  if cfg.licm then ir_step "licm" "licm" IO.licm;
  if cfg.aggressive_licm then
    ir_step "licm_dom" "licm_dom" Passes.Licm_dom.run;
  if cfg.gvn then ir_step "gvn" "gvn" Passes.Gvn.run;
  if cfg.if_convert then ir_step "if_convert" "if_convert" IO.if_convert;
  if cfg.slp then ir_step "slp_vectorize" "slp_vectorize" IO.slp_vectorize;
  if cfg.extra_lvn then begin
    ir_step "lvn" "lvn" C.lvn;
    ir_step "dce" "dce" C.dce
  end;
  if cfg.tail_call then ir_step "tail_call" "tail_call" IO.tail_call;
  if cfg.branch_count_reg then
    ir_step "branch_count_reg" "branch_count_reg" IO.branch_count_reg;
  if cfg.reorder_blocks then
    ir_step "reorder_blocks" "reorder_blocks" IO.reorder_blocks;
  if cfg.partition then ir_step "partition" "partition" IO.partition_blocks;
  if cfg.if_convert_late then
    ir_step "if_convert_late" "if_convert_late" IO.if_convert;
  if cfg.late_cleanup && cfg.baseline then
    ir_step "late_cleanup" "late_cleanup" C.run_baseline;
  if cfg.reorder_functions then
    add "reorder_functions" (fun st ->
        match st with
        | Ir_stage ir ->
          Telemetry.with_span "pass.reorder_functions" (fun () ->
              IO.reorder_functions ir);
          check_program ~verify ~where "reorder_functions" ir;
          Ir_stage ir
        | Ast_stage _ -> invalid_arg "Pipeline: IR step before lowering");
  List.rev !steps

(* --- prefix keys --- *)

(* The per-AST digest is a 1-slot physical-equality cache per domain: the
   tuner compiles the same AST value thousands of times, and marshaling
   it once per compile just to rediscover the same digest would tax the
   warm path the snapshots exist to shorten. *)
let ast_digest_slot : (Minic.Ast.program * string) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let program_digest (ast : Minic.Ast.program) =
  let slot = Domain.DLS.get ast_digest_slot in
  match !slot with
  | Some (a, d) when a == ast -> d
  | _ ->
    let d = Digest.string (Marshal.to_string ast []) in
    slot := Some (ast, d);
    d

(* The chain seed carries everything the step keys do not: the program
   itself, the profile, and the target arch.  Arch and profile are
   semantically load-bearing — codegen snapshots embed both in the
   emitted binary — so leaving them out would let two profiles (or two
   arches) that happen to resolve the same step list poison each other's
   entries.  The staleness regression tests pin this down. *)
let cache_seed ~profile ~arch ast =
  Digest.string
    (program_digest ast ^ "|" ^ profile ^ "|" ^ Isa.Insn.arch_name arch)

(* key_0 covers the seed plus step 0; key_{i} = H(key_{i-1} | skey_i)
   thereafter, so a key names the exact (program, profile, arch, step
   prefix) that produced the snapshot stored under it. *)
let prefix_keys ~seed steps =
  let keys = Array.make (List.length steps) "" in
  let prev = ref seed in
  List.iteri
    (fun i s ->
      let k = Digest.string (!prev ^ "|" ^ s.skey) in
      keys.(i) <- k;
      prev := k)
    steps;
  keys

let snapshot_of_stage st = Marshal.to_string st []

let stage_of_snapshot s : stage = Marshal.from_string s 0

(* Run the step list over [ast], resuming from the longest prefix the
   store still holds.  A restored IR stage passes the whole-program
   verifier before any further pass touches it (when verification is
   on), so `--verify-ir` gates every resumed prefix, not just freshly
   computed ones. *)
let run_plan ~verify ~where ?snapshot ~seed steps ast =
  let finish = function
    | Ir_stage ir -> ir
    | Ast_stage _ -> invalid_arg "Pipeline: plan ended before lowering"
  in
  match snapshot with
  | None -> finish (List.fold_left (fun st s -> s.run st) (Ast_stage ast) steps)
  | Some store ->
    let steps_a = Array.of_list steps in
    let n = Array.length steps_a in
    let keys = prefix_keys ~seed steps in
    let rec probe i =
      if i < 0 then None
      else
        match store.find keys.(i) with
        | Some data -> Some (i, data)
        | None -> probe (i - 1)
    in
    let start_idx, stage0 =
      match probe (n - 1) with
      | Some (i, data) ->
        let st =
          Telemetry.with_span
            ~attrs:
              [
                ("compile.resumed_at", string_of_int (i + 1));
                ("of_steps", string_of_int n);
              ]
            "pipeline.resume"
            (fun () ->
              let st = stage_of_snapshot data in
              (match st with
              | Ir_stage ir ->
                check_program ~verify ~where
                  ("resume:" ^ steps_a.(i).skey)
                  ir
              | Ast_stage _ -> ());
              st)
        in
        Telemetry.set_gauge "compile.resumed_at" (float_of_int (i + 1));
        (i + 1, st)
      | None ->
        Telemetry.set_gauge "compile.resumed_at" 0.0;
        (0, Ast_stage ast)
    in
    let stage = ref stage0 in
    for j = start_idx to n - 1 do
      stage := steps_a.(j).run !stage;
      store.store keys.(j) (snapshot_of_stage !stage)
    done;
    finish !stage

let apply_passes ?verify ?(where = "") ?snapshot ?cache_seed:seed
    (cfg : Config.t) (ast : Minic.Ast.program) : Vir.Ir.program =
  let verify = match verify with Some v -> v | None -> !verify_default in
  let steps = plan ~verify ~where cfg in
  match snapshot with
  | None -> run_plan ~verify ~where ~seed:"" steps ast
  | Some store ->
    let seed =
      match seed with
      | Some s -> s
      | None -> Digest.string (program_digest ast ^ "|anon")
    in
    run_plan ~verify ~where ~snapshot:store ~seed steps ast

let codegen_options_digest config =
  Digest.string (Marshal.to_string (Config.codegen_options config) [])

let compile ?(config = Config.o0) ?verify ?(flag_desc = "") ?snapshot
    ?boundaries ~arch ~profile ~opt_label ast =
  Telemetry.with_span
    ~attrs:
      [
        ("profile", profile);
        ("arch", Isa.Insn.arch_name arch);
        ("opt", opt_label);
      ]
    "compile"
    (fun () ->
      let verify = match verify with Some v -> v | None -> !verify_default in
      let where =
        Printf.sprintf " [profile=%s arch=%s opt=%s%s]" profile
          (Isa.Insn.arch_name arch) opt_label flag_desc
      in
      let codegen ir =
        Telemetry.with_span "pass.codegen" (fun () ->
            Codegen.Emit.compile_program
              ~options:(Config.codegen_options config)
              ?boundaries ~arch ~profile ~opt_label ir)
      in
      match snapshot with
      | None ->
        let steps = plan ~verify ~where config in
        codegen (run_plan ~verify ~where ~seed:"" steps ast)
      | Some store ->
        let steps = plan ~verify ~where config in
        let seed = cache_seed ~profile ~arch ast in
        let keys = prefix_keys ~seed steps in
        let final_key =
          if Array.length keys = 0 then seed
          else keys.(Array.length keys - 1)
        in
        (* The codegen snapshot closes the chain: its key adds everything
           codegen reads that the IR prefix does not carry.  [opt_label]
           is included because the emitted binary embeds it. *)
        let emit_key =
          Digest.string
            (final_key ^ "|emit|" ^ opt_label ^ "|"
           ^ codegen_options_digest config)
        in
        let restored =
          (* a verified build re-runs the gated pipeline end to end so the
             verifier actually sees IR; only the IR-stage snapshots (which
             are verified on restore) may shorten it.  A boundary-oracle
             build must also run codegen for real — a restored binary
             carries no instruction-boundary ground truth. *)
          if verify || boundaries <> None then None
          else
            Option.map
              (fun data -> (Marshal.from_string data 0 : Isa.Binary.t))
              (store.find emit_key)
        in
        (match restored with
        | Some bin -> bin
        | None ->
          let ir = run_plan ~verify ~where ~snapshot:store ~seed steps ast in
          let bin = codegen ir in
          store.store emit_key (Marshal.to_string bin []);
          bin))

let flag_vector_desc vector =
  " flags="
  ^ String.concat ""
      (List.map (fun b -> if b then "1" else "0") (Array.to_list vector))

let compile_flags p ?(arch = Isa.Insn.X86_64) ?snapshot ?boundaries vector ast
    =
  let config = Flags.resolve p vector in
  compile ~config ~flag_desc:(flag_vector_desc vector) ?snapshot ?boundaries
    ~arch ~profile:p.Flags.profile_name ~opt_label:"custom" ast

let compile_preset p ?(arch = Isa.Insn.X86_64) ?snapshot ?boundaries name ast =
  match name with
  | "O0" ->
    compile ~config:Config.o0 ?snapshot ?boundaries ~arch
      ~profile:p.Flags.profile_name ~opt_label:"-O0" ast
  | _ -> (
    match Flags.preset p name with
    | Some vector ->
      let config = Flags.resolve p vector in
      compile ~config ~flag_desc:(flag_vector_desc vector) ?snapshot
        ?boundaries ~arch ~profile:p.Flags.profile_name
        ~opt_label:("-" ^ name) ast
    | None -> invalid_arg ("Pipeline.compile_preset: unknown preset " ^ name))
