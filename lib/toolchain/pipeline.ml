module AO = Passes.Ast_opt
module IO = Passes.Ir_opt
module C = Passes.Cleanup

(* [tpass] times one whole-program AST pass; [fpass] times one IR pass
   over one function.  Both are plain pass-throughs when the global
   telemetry instance is disabled (the default). *)
let tpass name f ast = Telemetry.with_span ("pass." ^ name) (fun () -> f ast)

let fpass name f func =
  Telemetry.with_span ("pass." ^ name) (fun () -> f func)

(* --- IR verification gate (CLI --verify-ir, bench -verify) --- *)

let verify_default = ref false

exception Verification_failed of string

(* Test-only: after the named pass runs on a function, apply the mutation.
   Lets the test suite plant a miscompile inside a specific pass and assert
   the verifier attributes the failure to that pass name. *)
let test_break : (string * (Vir.Ir.func -> unit)) option ref = ref None

let verify_failed ~pass ~where detail =
  raise
    (Verification_failed
       (Printf.sprintf "IR verification failed after pass '%s'%s:\n%s" pass
          where detail))

let apply_passes ?verify ?(where = "") (cfg : Config.t)
    (ast : Minic.Ast.program) : Vir.Ir.program =
  let verify = match verify with Some v -> v | None -> !verify_default in
  (* --- AST-level, in a fixed canonical order --- *)
  let ast = if cfg.instrument then tpass "instrument" AO.instrument ast else ast in
  let needs_norm =
    cfg.inline_small || cfg.inline_big || cfg.expand_builtins
  in
  let ast =
    if needs_norm then tpass "normalize_calls" AO.normalize_calls ast else ast
  in
  let ast =
    if cfg.expand_builtins then tpass "expand_builtins" AO.expand_builtins ast
    else ast
  in
  let ast =
    if cfg.inline_big then
      tpass "inline"
        (AO.inline ~max_size:cfg.inline_big_threshold
           ~rounds:cfg.inline_rounds)
        ast
    else if cfg.inline_small then
      tpass "inline"
        (AO.inline ~max_size:cfg.inline_small_threshold
           ~rounds:cfg.inline_rounds)
        ast
    else ast
  in
  let ast = if cfg.unswitch then tpass "unswitch" AO.unswitch ast else ast in
  let ast = if cfg.distribute then tpass "distribute" AO.distribute ast else ast in
  let ast =
    if cfg.unroll_and_jam then tpass "unroll_and_jam" AO.unroll_and_jam ast
    else ast
  in
  let ast =
    if cfg.unroll then
      tpass "unroll"
        (AO.unroll ~factor:cfg.unroll_factor ~full_limit:cfg.full_unroll_limit)
        ast
    else ast
  in
  let ast = if cfg.peel then tpass "peel" AO.peel ast else ast in
  (* --- lowering --- *)
  let ir =
    Telemetry.with_span "pass.lower" (fun () ->
        Vir.Lower.lower_program
          ~options:
            {
              Vir.Lower.merge_conditionals = cfg.merge_conditionals;
              vectorize = cfg.vectorize;
            }
          ast)
  in
  (* --- IR-level --- *)
  let check pass (f : Vir.Ir.func) =
    (match !test_break with
    | Some (name, mutate) when name = pass -> mutate f
    | Some _ | None -> ());
    if verify then
      Telemetry.with_span "verify.ir" (fun () ->
          match Analysis.Verifier.verify_func ir f with
          | [] -> ()
          | errs ->
            verify_failed ~pass ~where
              (Analysis.Verifier.errors_to_string errs))
  in
  let check_program pass =
    if verify then
      Telemetry.with_span "verify.ir" (fun () ->
          match Analysis.Verifier.verify_program ir with
          | [] -> ()
          | errs ->
            verify_failed ~pass ~where
              (Analysis.Verifier.errors_to_string errs))
  in
  check_program "lower";
  let fpass name pass f =
    fpass name pass f;
    check name f
  in
  List.iter
    (fun f ->
      (* even -O0 emits structurally merged straight-line code: trivial
         jump chains from lowering never survive a real compiler *)
      fpass "simplify_cfg" C.simplify_cfg f;
      if cfg.baseline then fpass "baseline" C.run_baseline f;
      if cfg.strength_reduce then begin
        fpass "strength_reduce" IO.strength_reduce f;
        if cfg.baseline then begin
          fpass "lvn" C.lvn f;
          fpass "dce" C.dce f
        end
      end;
      if cfg.licm then fpass "licm" IO.licm f;
      if cfg.if_convert then fpass "if_convert" IO.if_convert f;
      if cfg.slp then fpass "slp_vectorize" IO.slp_vectorize f;
      if cfg.extra_lvn then begin
        fpass "lvn" C.lvn f;
        fpass "dce" C.dce f
      end;
      if cfg.tail_call then fpass "tail_call" IO.tail_call f;
      if cfg.branch_count_reg then fpass "branch_count_reg" IO.branch_count_reg f;
      if cfg.reorder_blocks then fpass "reorder_blocks" IO.reorder_blocks f;
      if cfg.partition then fpass "partition" IO.partition_blocks f;
      if cfg.if_convert_late then fpass "if_convert_late" IO.if_convert f;
      if cfg.late_cleanup && cfg.baseline then
        fpass "late_cleanup" C.run_baseline f)
    ir.funcs;
  if cfg.reorder_functions then begin
    Telemetry.with_span "pass.reorder_functions" (fun () ->
        IO.reorder_functions ir);
    check_program "reorder_functions"
  end;
  ir

let compile ?(config = Config.o0) ?verify ?(flag_desc = "") ~arch ~profile
    ~opt_label ast =
  Telemetry.with_span
    ~attrs:
      [
        ("profile", profile);
        ("arch", Isa.Insn.arch_name arch);
        ("opt", opt_label);
      ]
    "compile"
    (fun () ->
      let where =
        Printf.sprintf " [profile=%s arch=%s opt=%s%s]" profile
          (Isa.Insn.arch_name arch) opt_label flag_desc
      in
      let ir = apply_passes ?verify ~where config ast in
      Telemetry.with_span "pass.codegen" (fun () ->
          Codegen.Emit.compile_program
            ~options:(Config.codegen_options config)
            ~arch ~profile ~opt_label ir))

let flag_vector_desc vector =
  " flags="
  ^ String.concat ""
      (List.map (fun b -> if b then "1" else "0") (Array.to_list vector))

let compile_flags p ?(arch = Isa.Insn.X86_64) vector ast =
  let config = Flags.resolve p vector in
  compile ~config ~flag_desc:(flag_vector_desc vector) ~arch
    ~profile:p.Flags.profile_name ~opt_label:"custom" ast

let compile_preset p ?(arch = Isa.Insn.X86_64) name ast =
  match name with
  | "O0" ->
    compile ~config:Config.o0 ~arch ~profile:p.Flags.profile_name
      ~opt_label:"-O0" ast
  | _ -> (
    match Flags.preset p name with
    | Some vector ->
      let config = Flags.resolve p vector in
      compile ~config ~flag_desc:(flag_vector_desc vector) ~arch
        ~profile:p.Flags.profile_name ~opt_label:("-" ^ name) ast
    | None -> invalid_arg ("Pipeline.compile_preset: unknown preset " ^ name))
