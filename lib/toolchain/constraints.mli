(** Flag-constraint verification — the paper's "Constraints Verification"
    component (§4.1), with the DPLL solver standing in for Z3.

    Dependency and conflict rules are compiled to CNF once per profile;
    candidate flag vectors produced by the genetic algorithm are checked
    by the solver, and invalid ones are repaired (the paper eliminates
    them; repair keeps the population size stable and is strictly more
    search-efficient). *)

val cnf_of : Flags.profile -> Sat.Dpll.cnf
(** One clause per rule: [Requires (a, b)] ↦ (¬a ∨ b);
    [Conflicts (a, b)] ↦ (¬a ∨ ¬b).  Variables are flag indices. *)

val valid : Flags.profile -> bool array -> bool
(** Check a complete vector against the rules via
    {!Sat.Dpll.solve_with_assumptions} with every flag bit assumed. *)

val violations : Flags.profile -> bool array -> Flags.constraint_decl list
(** The rules the vector breaks (empty iff {!valid}). *)

val repair : Flags.profile -> Util.Rng.t -> bool array -> bool array
(** Return a valid vector near the input: broken [Requires (a, b)] is
    fixed by either enabling [b] or disabling [a] (coin flip); broken
    [Conflicts] by disabling one side.  Iterates to a fixpoint; the
    result always satisfies {!valid}. *)
