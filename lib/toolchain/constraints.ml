open Sat.Dpll

let clause_of p = function
  | Flags.Requires (a, b) ->
    [ Neg (Flags.flag_index p a); Pos (Flags.flag_index p b) ]
  | Flags.Conflicts (a, b) ->
    [ Neg (Flags.flag_index p a); Neg (Flags.flag_index p b) ]

let cnf_of p = List.map (clause_of p) p.Flags.constraints

let assumptions_of vector =
  Array.to_list (Array.mapi (fun i on -> if on then Pos i else Neg i) vector)

let valid p vector =
  let cnf = cnf_of p in
  match
    solve_with_assumptions ~nvars:(Array.length p.Flags.flags) cnf
      (assumptions_of vector)
  with
  | Sat _ -> true
  | Unsat -> false

let broken p vector rule =
  let on name = vector.(Flags.flag_index p name) in
  match rule with
  | Flags.Requires (a, b) -> on a && not (on b)
  | Flags.Conflicts (a, b) -> on a && on b

let violations p vector =
  List.filter (broken p vector) p.Flags.constraints

let repair p rng vector =
  let v = Array.copy vector in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    (* after a few random rounds, fall back to switching flags off only,
       which cannot oscillate *)
    let off_only = !rounds > 16 in
    List.iter
      (fun rule ->
        if broken p v rule then begin
          changed := true;
          match rule with
          | Flags.Requires (a, b) ->
            if (not off_only) && Util.Rng.bool rng then
              v.(Flags.flag_index p b) <- true
            else v.(Flags.flag_index p a) <- false
          | Flags.Conflicts (a, b) ->
            let victim = if Util.Rng.bool rng then a else b in
            v.(Flags.flag_index p victim) <- false
        end)
      p.Flags.constraints
  done;
  assert (valid p v);
  v
