(** The compiler driver: MinC source/AST + configuration → VX binary.

    This is BinTuner's "Compiler Interface" (§4.1): it glues the frontend,
    the flag-gated pass pipeline and the code generator, and is what the
    genetic algorithm invokes once per individual per generation. *)

val apply_passes : Config.t -> Minic.Ast.program -> Vir.Ir.program
(** Run the AST passes, lowering, and IR passes dictated by the
    configuration and return the optimized IR (exposed for tests). *)

val compile :
  ?config:Config.t ->
  arch:Isa.Insn.arch ->
  profile:string ->
  opt_label:string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile a checked program (see {!Minic.Sema.analyze}).  The default
    configuration is {!Config.o0}. *)

val compile_flags :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  bool array ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile under an explicit flag vector of the given profile (the
    GA's entry point).  Default arch x86-64. *)

val compile_preset :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile at a named preset: "O0", "O1", "O2", "O3" or "Os".  Raises
    [Invalid_argument] on an unknown preset name. *)
