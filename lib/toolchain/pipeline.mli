(** The compiler driver: MinC source/AST + configuration → VX binary.

    This is BinTuner's "Compiler Interface" (§4.1): it glues the frontend,
    the flag-gated pass pipeline and the code generator, and is what the
    genetic algorithm invokes once per individual per generation.

    The pipeline is an explicit step list — AST passes, lowering, each
    enabled IR pass over all functions, the program-level function
    reorder — and every step boundary can be snapshotted into an injected
    {!snapshot_store}.  Snapshots are keyed by a hash chain seeded with
    (program digest, profile, arch) and extended with one parameterized
    step key per step, so a later compile whose resolved configuration
    shares a step prefix resumes from the longest prefix the store still
    holds instead of recompiling from scratch.  The store is a plain
    record of closures: the pipeline stays agnostic of the cache policy
    (see [Bintuner.Incremental] for the LRU implementation the tuner
    injects).  Snapshotting is lossless — a compile through a store, warm
    or cold, emits the same bytes as a from-scratch compile. *)

val verify_default : bool ref
(** When true, every compile runs the IR verifier after lowering and after
    each IR pass (CLI [--verify-ir], bench [-verify]).  Off by default —
    verification costs a dataflow solve per pass per function. *)

exception Verification_failed of string
(** Raised by the verify gate; the message names the offending pass, the
    function, and the profile/arch/flag-vector context. *)

val test_break : (string * (Vir.Ir.func -> unit)) option ref
(** Test-only hook: [Some (pass, mutate)] applies [mutate] to every
    function right after [pass] runs on it, so tests can plant a
    miscompile and assert the verifier attributes it to [pass]. *)

type snapshot_store = {
  find : string -> string option;
      (** Look a prefix key up; [None] on a cold or evicted key.  Must be
          safe to call from any worker domain. *)
  store : string -> string -> unit;
      (** Publish the snapshot for a key.  Values are deterministic per
          key, so keep-first semantics under racing writers are exact. *)
}
(** The incremental-compilation seam: how the pipeline reads and writes
    stage snapshots without depending on any cache implementation. *)

val cache_seed : profile:string -> arch:Isa.Insn.arch -> Minic.Ast.program -> string
(** The key-chain seed for one (program, profile, arch) context.  Two
    contexts differing in any component get disjoint key spaces — the
    guard against the cross-profile/cross-arch staleness hazard, pinned
    by the regression tests. *)

val apply_passes :
  ?verify:bool ->
  ?where:string ->
  ?snapshot:snapshot_store ->
  ?cache_seed:string ->
  Config.t ->
  Minic.Ast.program ->
  Vir.Ir.program
(** Run the AST passes, lowering, and IR passes dictated by the
    configuration and return the optimized IR (exposed for tests).
    [verify] defaults to [!verify_default]; [where] is appended to
    verification-failure messages.  With [snapshot], stage snapshots are
    read and written through the store, chained from [cache_seed]
    (default: a digest of the program alone — pass {!cache_seed}'s result
    to share the store with {!compile}).  A restored IR stage is verified
    before any further pass runs when verification is on. *)

val compile :
  ?config:Config.t ->
  ?verify:bool ->
  ?flag_desc:string ->
  ?snapshot:snapshot_store ->
  ?boundaries:(string, int list) Hashtbl.t ->
  arch:Isa.Insn.arch ->
  profile:string ->
  opt_label:string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile a checked program (see {!Minic.Sema.analyze}).  The default
    configuration is {!Config.o0}.  With [snapshot], the compile resumes
    from the longest cached step prefix, and the emitted binary itself is
    cached under a final key extending the IR chain with the codegen
    options and labels — a full hit skips the pipeline entirely.  When
    verification is on the binary-level entry is bypassed (the verifier
    must see IR), but verified IR-stage snapshots still shorten the
    pipeline.  With [boundaries], codegen always runs for real (the
    binary-level cache entry is bypassed) and the table maps each
    function to its ground-truth instruction-start offsets — see
    {!Codegen.Emit.compile_program}. *)

val compile_flags :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  ?snapshot:snapshot_store ->
  ?boundaries:(string, int list) Hashtbl.t ->
  bool array ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile under an explicit flag vector of the given profile (the
    GA's entry point).  Default arch x86-64. *)

val compile_preset :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  ?snapshot:snapshot_store ->
  ?boundaries:(string, int list) Hashtbl.t ->
  string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile at a named preset: "O0", "O1", "O2", "O3" or "Os".  Raises
    [Invalid_argument] on an unknown preset name. *)
