(** The compiler driver: MinC source/AST + configuration → VX binary.

    This is BinTuner's "Compiler Interface" (§4.1): it glues the frontend,
    the flag-gated pass pipeline and the code generator, and is what the
    genetic algorithm invokes once per individual per generation. *)

val verify_default : bool ref
(** When true, every compile runs the IR verifier after lowering and after
    each IR pass (CLI [--verify-ir], bench [-verify]).  Off by default —
    verification costs a dataflow solve per pass per function. *)

exception Verification_failed of string
(** Raised by the verify gate; the message names the offending pass, the
    function, and the profile/arch/flag-vector context. *)

val test_break : (string * (Vir.Ir.func -> unit)) option ref
(** Test-only hook: [Some (pass, mutate)] applies [mutate] to every
    function right after [pass] runs on it, so tests can plant a
    miscompile and assert the verifier attributes it to [pass]. *)

val apply_passes :
  ?verify:bool -> ?where:string -> Config.t -> Minic.Ast.program ->
  Vir.Ir.program
(** Run the AST passes, lowering, and IR passes dictated by the
    configuration and return the optimized IR (exposed for tests).
    [verify] defaults to [!verify_default]; [where] is appended to
    verification-failure messages. *)

val compile :
  ?config:Config.t ->
  ?verify:bool ->
  ?flag_desc:string ->
  arch:Isa.Insn.arch ->
  profile:string ->
  opt_label:string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile a checked program (see {!Minic.Sema.analyze}).  The default
    configuration is {!Config.o0}. *)

val compile_flags :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  bool array ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile under an explicit flag vector of the given profile (the
    GA's entry point).  Default arch x86-64. *)

val compile_preset :
  Flags.profile ->
  ?arch:Isa.Insn.arch ->
  string ->
  Minic.Ast.program ->
  Isa.Binary.t
(** Compile at a named preset: "O0", "O1", "O2", "O3" or "Os".  Raises
    [Invalid_argument] on an unknown preset name. *)
