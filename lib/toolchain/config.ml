(* The resolved compiler configuration: every optimization flag of a
   profile maps to a mutation of this record.  [Pipeline.compile] reads it
   to decide which passes run, in which shape. *)

type switch_strategy = Codegen.Emit.switch_strategy =
  | Jump_table
  | Binary_search
  | Linear

type t = {
  (* inter-procedural / AST passes *)
  inline_small : bool;  (** inline callees below the small threshold *)
  inline_big : bool;  (** raise the threshold to the large one *)
  inline_rounds : int;
  inline_small_threshold : int;
  inline_big_threshold : int;
  unroll : bool;
  unroll_factor : int;
  full_unroll_limit : int;
  peel : bool;
  unswitch : bool;
  distribute : bool;
  unroll_and_jam : bool;
  expand_builtins : bool;
  instrument : bool;
  (* frontend lowering *)
  merge_conditionals : bool;
  vectorize : bool;
  (* IR passes *)
  baseline : bool;  (** mem2reg + LVN + DCE + simplify-cfg (the -O1 core) *)
  extra_lvn : bool;  (** re-run value numbering after the loop passes *)
  late_cleanup : bool;  (** final cleanup round after all IR passes *)
  if_convert_late : bool;  (** second if-conversion after block layout *)
  strength_reduce : bool;
  if_convert : bool;
  licm : bool;
  sccp : bool;  (** sparse conditional constprop + edge pruning *)
  gvn : bool;  (** dominator-ordered global value numbering *)
  aggressive_licm : bool;  (** chain-hoisting LICM on the dominator instance *)
  tail_call : bool;
  branch_count_reg : bool;
  slp : bool;
  reorder_blocks : bool;
  partition : bool;
  reorder_functions : bool;
  (* code generation *)
  switch_strategy : switch_strategy;
  jump_table_min : int;
  peephole : bool;
  align_functions : bool;
  align_loops : bool;
  omit_frame_pointer : bool;
  stack_realign : bool;
  long_calls : bool;
  allocatable_regs : int;
  return_reg : int;
}

(* -O0: nothing at all.  Note even [baseline] is off: locals stay in
   frame slots, producing the boilerplate code shape the paper's NCD
   discussion relies on. *)
let o0 =
  {
    inline_small = false;
    inline_big = false;
    inline_rounds = 1;
    inline_small_threshold = 8;
    inline_big_threshold = 70;
    unroll = false;
    unroll_factor = 4;
    full_unroll_limit = 8;
    peel = false;
    unswitch = false;
    distribute = false;
    unroll_and_jam = false;
    expand_builtins = false;
    instrument = false;
    merge_conditionals = false;
    vectorize = false;
    baseline = false;
    extra_lvn = false;
    late_cleanup = false;
    if_convert_late = false;
    strength_reduce = false;
    if_convert = false;
    licm = false;
    sccp = false;
    gvn = false;
    aggressive_licm = false;
    tail_call = false;
    branch_count_reg = false;
    slp = false;
    reorder_blocks = false;
    partition = false;
    reorder_functions = false;
    switch_strategy = Linear;
    jump_table_min = 4;
    peephole = false;
    align_functions = false;
    align_loops = false;
    omit_frame_pointer = false;
    stack_realign = false;
    long_calls = false;
    allocatable_regs = 16;
    return_reg = 0;
  }

let codegen_options (c : t) : Codegen.Emit.options =
  {
    Codegen.Emit.switch_strategy = c.switch_strategy;
    jump_table_min = c.jump_table_min;
    peephole = c.peephole;
    align_functions = c.align_functions;
    align_loops = c.align_loops;
    omit_frame_pointer = c.omit_frame_pointer;
    stack_realign = c.stack_realign;
    long_calls = c.long_calls;
    allocatable_regs = c.allocatable_regs;
    return_reg = c.return_reg;
  }
