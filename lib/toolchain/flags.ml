type flag = {
  name : string;
  apply : Config.t -> Config.t;
  description : string;
}

type constraint_decl =
  | Requires of string * string
  | Conflicts of string * string

type profile = {
  profile_name : string;
  flags : flag array;
  constraints : constraint_decl list;
  preset_o1 : bool array;
  preset_o2 : bool array;
  preset_o3 : bool array;
  preset_os : bool array;
}

let mk name description apply = { name; apply; description }

(* ------------------------------------------------------------------ *)
(* Flag effect library (shared between profiles)                       *)
(* ------------------------------------------------------------------ *)

open Config

let fx_inline_small c =
  { c with inline_small = true; inline_small_threshold = max c.inline_small_threshold 18 }

let fx_inline_big c = { c with inline_big = true }

let fx_inline_rounds2 c = { c with inline_rounds = max c.inline_rounds 2 }

(* inlining functions called once is size-blind in GCC; here it enables
   small-function inlining at the tighter default threshold *)
let fx_inline_once c = { c with inline_small = true }

let fx_inline_limit c = { c with inline_big_threshold = 120 }

let fx_unroll c = { c with unroll = true }

let fx_unroll_all c = { c with full_unroll_limit = 16 }

let fx_unroll8 c = { c with unroll_factor = 8 }

let fx_peel c = { c with peel = true }

let fx_unswitch c = { c with unswitch = true }

let fx_distribute c = { c with distribute = true }

let fx_uaj c = { c with unroll_and_jam = true }

let fx_builtin c = { c with expand_builtins = true }

let fx_instrument c = { c with instrument = true }

let fx_vectorize c = { c with vectorize = true }

let fx_slp c = { c with slp = true }

let fx_vec_both c = { c with vectorize = true; slp = true }

let fx_merge_cond c = { c with merge_conditionals = true }

let fx_extra_lvn c = { c with extra_lvn = true }

let fx_late_cleanup c = { c with late_cleanup = true }

let fx_slsr c = { c with strength_reduce = true }

let fx_ifcvt c = { c with if_convert = true }

let fx_ifcvt2 c = { c with if_convert_late = true }

let fx_licm c = { c with licm = true }

let fx_sccp c = { c with sccp = true }

let fx_gvn c = { c with gvn = true }

let fx_aggressive_licm c = { c with aggressive_licm = true }

let fx_tail c = { c with tail_call = true }

let fx_bcr c = { c with branch_count_reg = true }

let fx_reorder_blocks c = { c with reorder_blocks = true }

let fx_partition c = { c with partition = true }

let fx_reorder_funcs c = { c with reorder_functions = true }

let fx_jump_tables c = { c with switch_strategy = Jump_table }

let fx_peephole _name c = c  (* gate flag: effect comes via fpeephole2 *)

let fx_peephole2 c = { c with peephole = true }

let fx_align_funcs c = { c with align_functions = true }

let fx_align_loops c = { c with align_loops = true }

let fx_omit_fp c = { c with omit_frame_pointer = true }

let fx_realign c = { c with stack_realign = true }

let fx_long_call c = { c with long_calls = true }

let fx_pcc_ret c = { c with return_reg = 5 }

let fx_reg_ret c = { c with return_reg = 0 }

let fx_call_used c = { c with allocatable_regs = max 6 (c.allocatable_regs - 1) }

(* ------------------------------------------------------------------ *)
(* GCC 10.2 profile                                                    *)
(* ------------------------------------------------------------------ *)

let gcc_flag_list =
  [
    mk "-finline-small-functions" "inline callees smaller than a call" fx_inline_small;
    mk "-finline-functions" "inline all suitable functions" fx_inline_big;
    mk "-fpartial-inlining" "extra inlining round" fx_inline_rounds2;
    mk "-finline-functions-called-once" "inline single-call-site functions" fx_inline_once;
    mk "-finline-limit-100" "raise the inlining size limit" fx_inline_limit;
    mk "-fearly-inlining" "inline before the loop passes" fx_inline_rounds2;
    mk "-funroll-loops" "unroll counted loops" fx_unroll;
    mk "-funroll-all-loops" "also fully unroll larger constant trip counts" fx_unroll_all;
    mk "-funroll-max-times-8" "unroll by factor 8" fx_unroll8;
    mk "-fpeel-loops" "peel the first iteration" fx_peel;
    mk "-funswitch-loops" "hoist invariant conditionals out of loops" fx_unswitch;
    mk "-ftree-loop-distribute-patterns" "split memset-like loop prefixes" fx_distribute;
    mk "-floop-unroll-and-jam" "unroll outer loop and fuse inner bodies" fx_uaj;
    mk "-fbuiltin" "expand builtin string/memory functions" fx_builtin;
    mk "-finstrument-functions" "insert entry/exit instrumentation" fx_instrument;
    mk "-ftree-vectorize" "enable loop and SLP vectorization" fx_vec_both;
    mk "-ftree-loop-vectorize" "vectorize counted loops" fx_vectorize;
    mk "-ftree-slp-vectorize" "vectorize straight-line stores" fx_slp;
    mk "-fssa-phiopt" "merge pure conditional operands bitwise" fx_merge_cond;
    mk "-fcse-follow-jumps" "extra value-numbering round" fx_extra_lvn;
    mk "-frerun-cse-after-loop" "cleanup after the loop passes" fx_late_cleanup;
    mk "-ftree-slsr" "strength-reduce mul/div/mod by constants" fx_slsr;
    mk "-fif-conversion" "convert branches to conditional moves" fx_ifcvt;
    mk "-fif-conversion2" "second if-conversion after layout" fx_ifcvt2;
    mk "-fmove-loop-invariants" "loop-invariant code motion" fx_licm;
    mk "-foptimize-sibling-calls" "tail-call optimization" fx_tail;
    mk "-fbranch-count-reg" "decrement-and-branch loop instruction" fx_bcr;
    mk "-freorder-blocks" "lay blocks out in reverse postorder" fx_reorder_blocks;
    mk "-freorder-blocks-and-partition" "move cold blocks behind hot ones" fx_partition;
    mk "-freorder-functions" "emit functions by call frequency" fx_reorder_funcs;
    mk "-fjump-tables" "lower dense switches through a jump table" fx_jump_tables;
    mk "-fpeephole" "window peephole (gate)" (fx_peephole "gcc");
    mk "-fpeephole2" "peephole after register allocation" fx_peephole2;
    mk "-falign-functions" "pad function entries to 16 bytes" fx_align_funcs;
    mk "-falign-loops" "pad loop headers to 16 bytes" fx_align_loops;
    mk "-fomit-frame-pointer" "free the frame-pointer register" fx_omit_fp;
    mk "-mstackrealign" "realign the stack in prologues" fx_realign;
    mk "-mlong-call" "call through a register" fx_long_call;
    mk "-fpcc-struct-return" "return values in the alternate ABI register" fx_pcc_ret;
    mk "-freg-struct-return" "return values in the default register" fx_reg_ret;
    mk "-fcall-used-r8" "treat r8 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r9" "treat r9 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r10" "treat r10 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r11" "treat r11 as clobbered by calls" fx_call_used;
    mk "-ftree-ccp" "sparse conditional constant propagation" fx_sccp;
    mk "-ftree-pre" "global value numbering / redundancy elimination" fx_gvn;
    mk "-ftree-loop-im" "aggressive loop-invariant chain hoisting" fx_aggressive_licm;
  ]

let gcc_constraints =
  [
    Requires ("-fpartial-inlining", "-finline-functions");
    Requires ("-finline-limit-100", "-finline-functions");
    Requires ("-funroll-all-loops", "-funroll-loops");
    Requires ("-funroll-max-times-8", "-funroll-loops");
    Requires ("-ftree-loop-vectorize", "-ftree-vectorize");
    Requires ("-ftree-slp-vectorize", "-ftree-vectorize");
    Requires ("-fif-conversion2", "-fif-conversion");
    Requires ("-freorder-blocks-and-partition", "-freorder-blocks");
    Requires ("-fpeephole2", "-fpeephole");
    Conflicts ("-mstackrealign", "-fomit-frame-pointer");
    Conflicts ("-fpcc-struct-return", "-freg-struct-return");
    Conflicts ("-floop-unroll-and-jam", "-ftree-loop-distribute-patterns");
    (* GVN leaves copies behind and relies on the post-loop CSE round to
       propagate them; aggressive LICM extends the baseline loop pass *)
    Requires ("-ftree-pre", "-frerun-cse-after-loop");
    Requires ("-ftree-loop-im", "-fmove-loop-invariants");
    Conflicts ("-ftree-ccp", "-finstrument-functions");
  ]

let gcc_o1 =
  [
    "-fjump-tables";
    "-ftree-slsr";
    "-fif-conversion";
    "-fmove-loop-invariants";
    "-fbranch-count-reg";
    "-fbuiltin";
    "-fomit-frame-pointer";
    "-fssa-phiopt";
    "-finline-functions-called-once";
    "-fpeephole";
  ]

let gcc_o2 =
  gcc_o1
  @ [
      "-finline-small-functions";
      "-fcse-follow-jumps";
      "-frerun-cse-after-loop";
      "-foptimize-sibling-calls";
      "-freorder-blocks";
      "-freorder-functions";
      "-fpeephole2";
      "-falign-functions";
      "-falign-loops";
      "-fif-conversion2";
    ]

let gcc_o3 =
  gcc_o2
  @ [
      "-finline-functions";
      "-fpartial-inlining";
      "-funswitch-loops";
      "-ftree-vectorize";
      "-ftree-loop-vectorize";
      "-ftree-slp-vectorize";
      "-ftree-loop-distribute-patterns";
      "-fpeel-loops";
    ]

(* -Os: -O2 minus the code-size-increasing flags (alignment padding,
   if-conversion duplication is kept — it shrinks code here). *)
let gcc_os =
  List.filter
    (fun f -> not (List.mem f [ "-falign-functions"; "-falign-loops" ]))
    gcc_o2

(* ------------------------------------------------------------------ *)
(* LLVM 11.0 profile                                                   *)
(* ------------------------------------------------------------------ *)

let llvm_flag_list =
  [
    mk "-finline-functions" "inline all suitable functions" fx_inline_big;
    mk "-finline-hint-functions" "inline small callees" fx_inline_small;
    mk "-finline-aggressive" "extra inlining round" fx_inline_rounds2;
    mk "-funroll-loops" "unroll counted loops" fx_unroll;
    mk "-funroll-count-8" "unroll by factor 8" fx_unroll8;
    mk "-funroll-full" "fully unroll larger constant trip counts" fx_unroll_all;
    mk "-floop-unswitch" "hoist invariant conditionals out of loops" fx_unswitch;
    mk "-floop-distribute" "split memset-like loop prefixes" fx_distribute;
    mk "-floop-unroll-and-jam" "unroll outer loop and fuse inner bodies" fx_uaj;
    mk "-fbuiltin" "expand builtin string/memory functions" fx_builtin;
    mk "-finstrument-functions" "insert entry/exit instrumentation" fx_instrument;
    mk "-fvectorize" "vectorize counted loops" fx_vectorize;
    mk "-fslp-vectorize" "vectorize straight-line stores" fx_slp;
    mk "-ftree-vectorize" "enable both vectorizers" fx_vec_both;
    mk "-fsimplifycfg-sink" "merge pure conditional operands bitwise" fx_merge_cond;
    mk "-fgvn" "extra value-numbering round" fx_extra_lvn;
    mk "-flate-cse" "cleanup after the loop passes" fx_late_cleanup;
    mk "-fstrength-reduce" "strength-reduce mul/div/mod by constants" fx_slsr;
    mk "-fif-convert" "convert branches to conditional moves" fx_ifcvt;
    mk "-fif-convert-aggressive" "second if-conversion after layout" fx_ifcvt2;
    mk "-flicm" "loop-invariant code motion" fx_licm;
    mk "-foptimize-sibling-calls" "tail-call optimization" fx_tail;
    mk "-fcount-reg" "decrement-and-branch loop instruction" fx_bcr;
    mk "-fjump-tables" "lower dense switches through a jump table" fx_jump_tables;
    mk "-fpeephole" "window peephole (gate)" (fx_peephole "llvm");
    mk "-fpeephole2" "peephole after register allocation" fx_peephole2;
    mk "-falign-functions" "pad function entries to 16 bytes" fx_align_funcs;
    mk "-falign-loops" "pad loop headers to 16 bytes" fx_align_loops;
    mk "-fomit-frame-pointer" "free the frame-pointer register" fx_omit_fp;
    mk "-mstackrealign" "realign the stack in prologues" fx_realign;
    mk "-mlong-call" "call through a register" fx_long_call;
    mk "-fpcc-struct-return" "return values in the alternate ABI register" fx_pcc_ret;
    mk "-freg-struct-return" "return values in the default register" fx_reg_ret;
    mk "-freorder-blocks" "lay blocks out in reverse postorder" fx_reorder_blocks;
    mk "-fhot-cold-split" "move cold blocks behind hot ones" fx_partition;
    mk "-freorder-functions" "emit functions by call frequency" fx_reorder_funcs;
    mk "-fpeel-loops" "peel the first iteration" fx_peel;
    mk "-fcall-used-r8" "treat r8 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r9" "treat r9 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r10" "treat r10 as clobbered by calls" fx_call_used;
    mk "-fcall-used-r11" "treat r11 as clobbered by calls" fx_call_used;
    mk "-fsccp" "sparse conditional constant propagation" fx_sccp;
    mk "-fnewgvn" "global value numbering / redundancy elimination" fx_gvn;
    mk "-flicm-aggressive" "aggressive loop-invariant chain hoisting" fx_aggressive_licm;
  ]

let llvm_constraints =
  [
    Requires ("-finline-aggressive", "-finline-functions");
    Requires ("-funroll-count-8", "-funroll-loops");
    Requires ("-funroll-full", "-funroll-loops");
    Requires ("-fif-convert-aggressive", "-fif-convert");
    Requires ("-fhot-cold-split", "-freorder-blocks");
    Requires ("-fpeephole2", "-fpeephole");
    Conflicts ("-mstackrealign", "-fomit-frame-pointer");
    Conflicts ("-fpcc-struct-return", "-freg-struct-return");
    Conflicts ("-floop-unroll-and-jam", "-floop-distribute");
    (* as in the gcc profile: new GVN needs the late CSE cleanup, and the
       aggressive LICM builds on the baseline one *)
    Requires ("-fnewgvn", "-flate-cse");
    Requires ("-flicm-aggressive", "-flicm");
    Conflicts ("-fsccp", "-finstrument-functions");
  ]

let llvm_o1 =
  [
    "-fjump-tables";
    "-fstrength-reduce";
    "-fif-convert";
    "-flicm";
    "-fbuiltin";
    "-fomit-frame-pointer";
    "-finline-hint-functions";
    "-fpeephole";
  ]

let llvm_o2 =
  llvm_o1
  @ [
      "-fgvn";
      "-flate-cse";
      "-foptimize-sibling-calls";
      "-freorder-blocks";
      "-freorder-functions";
      "-fpeephole2";
      "-falign-functions";
      "-fvectorize";
      "-fslp-vectorize";
      "-fsimplifycfg-sink";
    ]

(* clang's -O3 mostly raises inlining aggressiveness; it does NOT turn on
   aggressive loop unrolling — the paper's Figure 7 shows BinTuner
   *discovering* -funroll-loops beyond -O3 as its most potent LLVM flag *)
let llvm_o3 =
  llvm_o2
  @ [
      "-finline-functions";
      "-floop-unswitch";
      "-falign-loops";
      "-fif-convert-aggressive";
    ]

let llvm_os =
  List.filter
    (fun f -> not (List.mem f [ "-falign-functions"; "-fvectorize"; "-fslp-vectorize" ]))
    llvm_o2

(* ------------------------------------------------------------------ *)
(* Profile assembly                                                    *)
(* ------------------------------------------------------------------ *)

let vector_of_names flags names =
  Array.map (fun f -> List.mem f.name names) flags

let build name flag_list constraints o1 o2 o3 os =
  let flags = Array.of_list flag_list in
  {
    profile_name = name;
    flags;
    constraints;
    preset_o1 = vector_of_names flags o1;
    preset_o2 = vector_of_names flags o2;
    preset_o3 = vector_of_names flags o3;
    preset_os = vector_of_names flags os;
  }

let gcc = build "gcc-10.2" gcc_flag_list gcc_constraints gcc_o1 gcc_o2 gcc_o3 gcc_os

let llvm =
  build "llvm-11.0" llvm_flag_list llvm_constraints llvm_o1 llvm_o2 llvm_o3
    llvm_os

let profiles = [ gcc; llvm ]

let find name = List.find (fun p -> p.profile_name = name) profiles

let flag_index p name =
  let found = ref (-1) in
  Array.iteri (fun i f -> if f.name = name then found := i) p.flags;
  if !found < 0 then raise Not_found else !found

let resolve p vector =
  if Array.length vector <> Array.length p.flags then
    invalid_arg "Flags.resolve: vector length mismatch";
  (* any explicit flag vector compiles with the -O1 core on: register
     promotion cannot be disabled in a real compiler either *)
  let base = { Config.o0 with baseline = true; switch_strategy = Binary_search } in
  let cfg = ref base in
  Array.iteri (fun i on -> if on then cfg := p.flags.(i).apply !cfg) vector;
  !cfg

let preset p = function
  | "O1" -> Some p.preset_o1
  | "O2" -> Some p.preset_o2
  | "O3" -> Some p.preset_o3
  | "Os" -> Some p.preset_os
  | _ -> None

let preset_names = [ "O0"; "O1"; "O2"; "O3"; "Os" ]
