(** LLVM-verifier-style structural well-formedness checks over [Vir.Ir].

    The pass pipeline's whole claim — NCD/BinHunt differences measure
    code {i shape}, never {i breakage} — rests on every flag-gated pass
    preserving semantics.  End-to-end VM differential tests catch a
    miscompile but localize nothing in a 25-pass pipeline; running
    {!verify_func} between passes turns "some pass broke openssl at -O3"
    into "pass licm left a branch to a deleted block".

    Checks, per function:
    - block list is non-empty, labels unique and within
      [0, next_label);
    - every terminator target names an existing block;
    - successor and predecessor views of the CFG agree edge for edge;
    - [Call]/[Tail_call] name a function of the module with matching
      arity;
    - slot indices within [0, nslots); registers within
      [0, next_reg) / [0, next_vreg);
    - memory operations name a module global or a function-local array;
    - def-before-use as a taint analysis: maybe-undefined scalar reads
      are errors only when they reach an observable sink (memory, I/O,
      calls, addresses, select conditions, control flow, return values),
      which licenses if-conversion's deliberate speculation; vector
      registers keep the strict definitely-assigned-on-all-paths rule. *)

type error = { check : string; func : string; detail : string }

val error_to_string : error -> string
(** ["func: [check] detail"]. *)

val errors_to_string : error list -> string
(** ["; "]-joined {!error_to_string}, for exception payloads and logs. *)

val verify_func : Vir.Ir.program -> Vir.Ir.func -> error list
(** All violations in one function (empty = well-formed).  The program
    is consulted for call targets and globals. *)

val verify_program : Vir.Ir.program -> error list
(** {!verify_func} over every function, plus module-level checks
    (duplicate function names, duplicate global names). *)
