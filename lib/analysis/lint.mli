(** MinC lint — stanc3-style "pedantic mode" over the -O0 lowering.

    Run on {i unoptimized} VIR so findings map one-to-one onto the source
    program: locals are still frame slots (slots [0..nparams-1] are the
    spilled parameters, higher slots follow declaration order) and no
    pass has folded away the conditions being judged.  Families:

    - [unused-local] / [unused-param]: a slot that is never loaded;
    - [unused-array]: a local array never loaded or stored;
    - [dead-store]: a slot store no path ever reads before the next
      store or function exit (slot liveness via {!Dataflow});
    - [always-true] / [always-false]: a branch condition whose interval
      excludes 0 (or is exactly 0);
    - [unreachable-switch-arm]: a case key outside the scrutinee's
      interval, or shadowed by an earlier identical key.

    Findings are advisory, not errors: the CLI [analyze] command layers
    an allowlist on top and only fails on fresh findings. *)

type finding = { func : string; category : string; detail : string }

val finding_to_string : finding -> string
(** ["func: [category] detail"] — the stable human rendering the
    allowlist format is keyed on. *)

val lint_func : Vir.Ir.program -> Vir.Ir.func -> finding list
(** Findings for one function, in block-layout order. *)

val lint_program : Vir.Ir.program -> finding list
(** Concatenation of {!lint_func} over the program's functions in
    definition order — deterministic, suitable for golden tests. *)
