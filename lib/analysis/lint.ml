(* MinC lint — stanc3-style "pedantic mode" over the -O0 lowering.

   Runs on unoptimized VIR so the findings map one-to-one onto the source
   program: locals are still frame slots (slot 0..nparams-1 are the
   spilled parameters, higher slots follow declaration order) and no pass
   has folded away the conditions being judged.  Four families:

     - unused-local / unused-param: a slot that is never loaded;
     - unused-array: a local array never loaded or stored;
     - dead-store: a slot store no path ever reads before the next store
       or function exit (slot liveness via the dataflow framework);
     - always-true / always-false: a branch condition whose interval
       excludes 0 (or is exactly 0);
     - unreachable-switch-arm: a case key outside the scrutinee's
       interval, or shadowed by an earlier identical key. *)

open Vir.Ir
module Iset = Dataflow.Iset

type finding = { func : string; category : string; detail : string }

let finding_to_string f = Printf.sprintf "%s: [%s] %s" f.func f.category f.detail

(* Slot liveness: backward, gen = Slot_load, kill = Slot_store. *)
let slot_liveness (f : func) =
  Dataflow.liveness_solver
    ~uses:(function Slot_load (_, s) -> [ s ] | _ -> [])
    ~def:(function Slot_store (s, _) -> Some s | _ -> None)
    ~term_uses:(fun _ -> [])
    f

let lint_func (p : program) (f : func) : finding list =
  ignore p;
  let out = ref [] in
  let add category fmt =
    Printf.ksprintf
      (fun detail -> out := { func = f.fname; category; detail } :: !out)
      fmt
  in
  let nparams = List.length f.params in
  let slot_name s =
    if s < nparams then Printf.sprintf "parameter slot %d" s
    else Printf.sprintf "local slot %d" s
  in
  (* --- unused locals / parameters / arrays --- *)
  let loaded = Array.make (max 1 f.nslots) false in
  let arrays_touched = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Slot_load (_, s) -> if s < f.nslots then loaded.(s) <- true
          | Load (_, g, _) | Store (g, _, _) | Vload (_, g, _)
          | Vstore (g, _, _) ->
            Hashtbl.replace arrays_touched g ()
          | _ -> ())
        b.instrs)
    f.blocks;
  let unused = ref Iset.empty in
  for s = 0 to f.nslots - 1 do
    if not loaded.(s) then begin
      unused := Iset.add s !unused;
      add
        (if s < nparams then "unused-param" else "unused-local")
        "%s is never read" (slot_name s)
    end
  done;
  List.iter
    (fun (name, _, _) ->
      if not (Hashtbl.mem arrays_touched name) then
        add "unused-array" "local array %s is never used" name)
    f.local_arrays;
  (* --- dead stores (skip slots already reported unused) --- *)
  let _, slot_live_out = slot_liveness f in
  List.iter
    (fun b ->
      let live =
        ref
          (match Hashtbl.find_opt slot_live_out b.label with
          | Some s -> s
          | None -> Iset.empty)
      in
      List.iter
        (fun i ->
          (match i with
          | Slot_store (s, _)
            when (not (Iset.mem s !live)) && not (Iset.mem s !unused) ->
            add "dead-store" "L%d: store to %s is never read" b.label
              (slot_name s)
          | _ -> ());
          match i with
          | Slot_store (s, _) -> live := Iset.remove s !live
          | Slot_load (_, s) -> live := Iset.add s !live
          | _ -> ())
        (List.rev b.instrs))
    f.blocks;
  (* --- interval-based condition and switch checks --- *)
  let _, itv_out = Dataflow.Interval.solve f in
  List.iter
    (fun b ->
      match Hashtbl.find_opt itv_out b.label with
      | None | Some Dataflow.Interval.Unreached -> ()
      | Some (Dataflow.Interval.Env env) -> (
        let itv_of = function
          | Imm n -> Dataflow.Interval.const n
          | Reg r -> Dataflow.Interval.lookup env r
        in
        match b.term with
        | Br (c, _, _) ->
          let v = itv_of c in
          if v.Dataflow.Interval.lo > 0 || v.Dataflow.Interval.hi < 0 then
            add "always-true" "L%d: branch condition is always true" b.label
          else if v.Dataflow.Interval.lo = 0 && v.Dataflow.Interval.hi = 0 then
            add "always-false" "L%d: branch condition is always false" b.label
        | Switch (v, cases, _) ->
          let itv = itv_of v in
          let seen = Hashtbl.create 8 in
          List.iter
            (fun (k, _) ->
              if Hashtbl.mem seen k then
                add "unreachable-switch-arm"
                  "L%d: case %d shadowed by an earlier identical case" b.label
                  k
              else begin
                Hashtbl.replace seen k ();
                if k < itv.Dataflow.Interval.lo || k > itv.Dataflow.Interval.hi
                then
                  add "unreachable-switch-arm"
                    "L%d: case %d is outside the scrutinee's range" b.label k
              end)
            cases
        | Ret _ | Jmp _ | Tail_call _ | Loop_branch _ -> ()))
    f.blocks;
  List.rev !out

let lint_program (p : program) : finding list =
  List.concat_map (lint_func p) p.funcs
