(* LLVM-verifier-style structural well-formedness checks over [Vir.Ir].

   The pass pipeline's whole claim — NCD/BinHunt differences measure code
   *shape*, never *breakage* — rests on every flag-gated pass preserving
   semantics.  End-to-end VM differential tests catch a miscompile but
   localize nothing in a 25-pass pipeline; running [verify_func] between
   passes turns "some pass broke openssl at -O3" into "pass licm left a
   branch to a deleted block".

   Checks, per function:
     - block list is non-empty and labels are unique and within
       [0, next_label) — every label must come from [fresh_label];
     - every terminator target names an existing block (exactly one
       terminator per block is already enforced by the [block] type);
     - the successor and predecessor views of the CFG agree edge for
       edge;
     - [Call]/[Tail_call] name a function of the module and pass exactly
       as many arguments as it has parameters;
     - [Slot_load]/[Slot_store] indices are within [0, nslots);
     - scalar registers are within [0, next_reg), vector registers within
       [0, next_vreg) — a register must come from [fresh_reg]/[fresh_vreg];
     - [Load]/[Store]/[Vload]/[Vstore] name a module global or one of the
       function's own local arrays;
     - def-before-use: a register read that is not definitely assigned on
       all paths from entry yields a machine-state-dependent value after
       register allocation (the VM keeps one zeroed global register file,
       the interpreter reads 0) — with two sanctioned exceptions.  A
       register with *no* definition anywhere in the function reads as 0
       in both the IR interpreter and generated code.  And if-conversion
       deliberately speculates pure arm instructions above their branch:
       the junk a speculated instruction reads on the paths that would
       not have executed it flows only into [Select] data inputs that
       pick the other arm on exactly those paths.  So the scalar check is
       a taint analysis: maybe-undefined reads taint their results, taint
       propagates through pure arithmetic, is shielded at [Select] data
       inputs, and is an error only when it reaches an observable sink —
       memory, I/O, a call boundary, an address, a select condition,
       control flow or a return value.  Vector registers are never
       speculated, so the vector namespace keeps the strict
       definitely-assigned-on-all-paths rule. *)

open Vir.Ir
module Iset = Dataflow.Iset

type error = { check : string; func : string; detail : string }

let error_to_string e = Printf.sprintf "%s: [%s] %s" e.func e.check e.detail

let errors_to_string errs =
  String.concat "; " (List.map error_to_string errs)

(* Definite assignment over an arbitrary register namespace: the set of
   registers written on every path from entry to each block's start.
   [Unreached] is the identity of the path intersection, so unreachable
   blocks are recognizable (and skipped) rather than reported on. *)
type definite = Unreached | Defined of Iset.t

let definite_solver ~def ~boundary (f : func) =
  let module D = struct
    type t = definite

    let direction = Dataflow.Forward
    let boundary _ = Defined boundary
    let bottom _ = Unreached

    let equal a b =
      match (a, b) with
      | Unreached, Unreached -> true
      | Defined x, Defined y -> Iset.equal x y
      | _ -> false

    let join a b =
      match (a, b) with
      | Unreached, x | x, Unreached -> x
      | Defined x, Defined y -> Defined (Iset.inter x y)

    let widen a b =
      match (a, b) with
      | Unreached, x | x, Unreached -> x
      | Defined x, Defined y -> Defined (Iset.inter x y)

    let transfer _ b input =
      match input with
      | Unreached -> Unreached
      | Defined s ->
        Defined
          (List.fold_left
             (fun acc i ->
               match def i with Some d -> Iset.add d acc | None -> acc)
             s b.instrs)
  end in
  let module S = Dataflow.Make (D) in
  S.solve f

let verify_func (p : program) (f : func) : error list =
  let errs = ref [] in
  let err check fmt =
    Printf.ksprintf
      (fun detail -> errs := { check; func = f.fname; detail } :: !errs)
      fmt
  in
  if f.blocks = [] then begin
    err "blocks" "function has no blocks";
    List.rev !errs
  end
  else begin
    (* --- labels --- *)
    let labels = Hashtbl.create 32 in
    List.iter
      (fun b ->
        if Hashtbl.mem labels b.label then
          err "labels" "duplicate block label L%d" b.label;
        if b.label < 0 || b.label >= f.next_label then
          err "labels" "block label L%d outside [0, next_label=%d)" b.label
            f.next_label;
        Hashtbl.replace labels b.label ())
      f.blocks;
    (* --- terminator targets --- *)
    List.iter
      (fun b ->
        List.iter
          (fun t ->
            if not (Hashtbl.mem labels t) then
              err "target" "L%d: %s targets missing block L%d" b.label
                (term_to_string b.term) t)
          (successors b.term))
      f.blocks;
    (* --- successor/predecessor edge agreement --- *)
    let preds = predecessors f in
    let succ_edges = edge_count f in
    let pred_edges =
      Hashtbl.fold (fun _ ps acc -> acc + List.length ps) preds 0
    in
    if succ_edges <> pred_edges then
      err "cfg" "edge views disagree: %d successor edges, %d predecessor edges"
        succ_edges pred_edges;
    Hashtbl.iter
      (fun l ps ->
        List.iter
          (fun pl ->
            match List.find_opt (fun b -> b.label = pl) f.blocks with
            | Some pb when List.mem l (successors pb.term) -> ()
            | Some _ ->
              err "cfg" "predecessor edge L%d -> L%d has no successor edge" pl l
            | None -> err "cfg" "predecessor L%d of L%d is not a block" pl l)
          ps)
      preds;
    (* --- per-instruction structural checks --- *)
    let fn_arity = Hashtbl.create 16 in
    List.iter
      (fun (g : func) ->
        Hashtbl.replace fn_arity g.fname (List.length g.params))
      p.funcs;
    let arrays = Hashtbl.create 16 in
    List.iter (fun (n, _) -> Hashtbl.replace arrays n ()) p.globals;
    List.iter (fun (n, _, _) -> Hashtbl.replace arrays n ()) f.local_arrays;
    let check_call where name args =
      match Hashtbl.find_opt fn_arity name with
      | None -> err "call" "L%d: call to unknown function %s" where name
      | Some arity ->
        if List.length args <> arity then
          err "call" "L%d: %s expects %d arguments, got %d" where name arity
            (List.length args)
    in
    let check_reg where r =
      if r < 0 || r >= f.next_reg then
        err "reg" "L%d: register r%d outside [0, next_reg=%d)" where r
          f.next_reg
    in
    let check_vreg where v =
      if v < 0 || v >= f.next_vreg then
        err "vreg" "L%d: vector register v%d outside [0, next_vreg=%d)" where v
          f.next_vreg
    in
    let check_slot where s =
      if s < 0 || s >= f.nslots then
        err "slot" "L%d: slot %d outside [0, nslots=%d)" where s f.nslots
    in
    let check_array where n =
      if not (Hashtbl.mem arrays n) then
        err "array" "L%d: unknown array or global %s" where n
    in
    List.iter (check_reg (-1)) f.params;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            List.iter (check_reg b.label) (instr_uses i);
            (match instr_def i with
            | Some d -> check_reg b.label d
            | None -> ());
            List.iter (check_vreg b.label) (instr_vuses i);
            (match instr_vdef i with
            | Some d -> check_vreg b.label d
            | None -> ());
            match i with
            | Slot_load (_, s) | Slot_store (s, _) -> check_slot b.label s
            | Call (_, name, args) -> check_call b.label name args
            | Load (_, g, _) | Store (g, _, _) | Vload (_, g, _)
            | Vstore (g, _, _) ->
              check_array b.label g
            | Bin _ | Un _ | Mov _ | Select _ | Vbin _ | Vsplat _ | Vpack _
            | Vreduce _ | Print_int _ | Print_char _ | Read_input _
            | Input_len _ ->
              ())
          b.instrs;
        List.iter (check_reg b.label) (term_uses b.term);
        match b.term with
        | Tail_call (name, args) -> check_call b.label name args
        | Ret _ | Jmp _ | Br _ | Switch _ | Loop_branch _ -> ())
      f.blocks;
    (* --- def-before-use (only meaningful on a structurally sound CFG) --- *)
    if !errs = [] then begin
      let never_defined ns_def =
        let defined = ref Iset.empty in
        List.iter
          (fun b ->
            List.iter
              (fun i ->
                match ns_def i with
                | Some d -> defined := Iset.add d !defined
                | None -> ())
              b.instrs)
          f.blocks;
        !defined
      in
      let check_namespace ~what ~def ~uses ~term_uses ~boundary =
        let has_def = never_defined def in
        let in_facts, _ = definite_solver ~def ~boundary f in
        List.iter
          (fun b ->
            match Hashtbl.find_opt in_facts b.label with
            | None | Some Unreached -> () (* dead code never executes *)
            | Some (Defined at_entry) ->
              let defined = ref at_entry in
              let check_use r =
                if
                  (not (Iset.mem r !defined))
                  && Iset.mem r has_def
                then
                  err "def-before-use"
                    "L%d: %s %d read but only assigned on some paths" b.label
                    what r
              in
              List.iter
                (fun i ->
                  List.iter check_use (uses i);
                  match def i with
                  | Some d -> defined := Iset.add d !defined
                  | None -> ())
                b.instrs;
              List.iter check_use (term_uses b.term))
          f.blocks
      in
      (* Scalar namespace: taint maybe-undefined reads, propagate through
         pure ops, shield at select data inputs, report at sinks (see the
         header comment). *)
      let has_def = never_defined instr_def in
      let in_facts, _ =
        definite_solver ~def:instr_def ~boundary:(Iset.of_list f.params) f
      in
      let assigned_at l =
        match Hashtbl.find_opt in_facts l with
        | None | Some Unreached -> None
        | Some (Defined s) -> Some s
      in
      let tainted_op (assigned, t) = function
        | Imm _ -> false
        | Reg r ->
          Iset.mem r t || ((not (Iset.mem r assigned)) && Iset.mem r has_def)
      in
      let step ((assigned, t) as state) i =
        let data_taint =
          match i with
          | Bin (_, _, a, b) -> tainted_op state a || tainted_op state b
          | Un (_, _, a) | Mov (_, a) -> tainted_op state a
          | _ -> false
        in
        match instr_def i with
        | Some d ->
          ( Iset.add d assigned,
            if data_taint then Iset.add d t else Iset.remove d t )
        | None -> state
      in
      let module T = struct
        type t = Iset.t

        let direction = Dataflow.Forward
        let boundary _ = Iset.empty
        let bottom _ = Iset.empty
        let equal = Iset.equal
        let join = Iset.union
        let widen = Iset.union

        let transfer _ b tin =
          match assigned_at b.label with
          | None -> Iset.empty
          | Some assigned ->
            snd (List.fold_left step (assigned, tin) b.instrs)
      end in
      let module TS = Dataflow.Make (T) in
      let taint_in, _ = TS.solve f in
      List.iter
        (fun b ->
          match assigned_at b.label with
          | None -> () (* dead code never executes *)
          | Some assigned0 ->
            let t0 =
              match Hashtbl.find_opt taint_in b.label with
              | Some t -> t
              | None -> Iset.empty
            in
            let state = ref (assigned0, t0) in
            let bad what o =
              match o with
              | Imm _ -> ()
              | Reg r ->
                if tainted_op !state o then
                  err "undef-use"
                    "L%d: possibly-undefined register %d reaches %s" b.label
                    r what
            in
            List.iter
              (fun i ->
                (match i with
                | Bin _ | Un _ | Mov _ | Slot_load _ | Input_len _ -> ()
                | Select (_, c, _, _) -> bad "a select condition" c
                | Load (_, _, idx) -> bad "a load address" idx
                | Store (_, idx, v) ->
                  bad "a store address" idx;
                  bad "a stored value" v
                | Slot_store (_, v) -> bad "a stored value" v
                | Call (_, _, args) -> List.iter (bad "a call argument") args
                | Vload (_, _, idx) -> bad "a vector load address" idx
                | Vstore (_, idx, _) -> bad "a vector store address" idx
                | Vbin _ | Vreduce _ -> ()
                | Vsplat (_, o) -> bad "a vector splat" o
                | Vpack (_, os) -> List.iter (bad "a vector lane") os
                | Print_int o | Print_char o -> bad "program output" o
                | Read_input (_, idx) -> bad "an input index" idx);
                state := step !state i)
              b.instrs;
            (match b.term with
            | Ret (Some o) -> bad "the return value" o
            | Ret None | Jmp _ -> ()
            | Br (c, _, _) -> bad "a branch condition" c
            | Switch (o, _, _) -> bad "a switch scrutinee" o
            | Tail_call (_, args) -> List.iter (bad "a call argument") args
            | Loop_branch (r, _, _) -> bad "a loop counter" (Reg r)))
        f.blocks;
      (* Vector namespace: strict definite assignment. *)
      check_namespace ~what:"vector register" ~def:instr_vdef
        ~uses:instr_vuses
        ~term_uses:(fun _ -> [])
        ~boundary:Iset.empty
    end;
    List.rev !errs
  end

let verify_program (p : program) : error list =
  let errs = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seen f.fname then
        errs :=
          {
            check = "module";
            func = f.fname;
            detail = "duplicate function name";
          }
          :: !errs;
      Hashtbl.replace seen f.fname ())
    p.funcs;
  let gseen = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem gseen n then
        errs :=
          { check = "module"; func = n; detail = "duplicate global name" }
          :: !errs;
      Hashtbl.replace gseen n ())
    p.globals;
  List.fold_left (fun acc f -> acc @ verify_func p f) (List.rev !errs) p.funcs
