(** Deterministic worklist dataflow solver.

    The engine ({!Make_graph}) is generic over a directed graph: a client
    provides node enumeration in layout order plus successor/predecessor
    edges, and a lattice ([bottom]/[join]/[equal], with [widen] for
    infinite-height domains) with a per-node [transfer] function.  The
    solver seeds a FIFO worklist in layout order (reverse layout order
    for backward problems) and iterates to a fixpoint, so two runs over
    the same graph produce identical tables — the fitness pipeline
    depends on byte-identical results at any worker count.

    {!Make} specializes the engine to [Vir.Ir] functions (nodes are block
    labels); [Binsight.Features] reuses {!Make_graph} directly over
    recovered binary CFGs (nodes are basic-block addresses).

    [solve] returns two tables, [(in_facts, out_facts)]: the fact at
    node entry and at node exit, regardless of direction.  For a
    backward problem the solver computes [out] by joining successor
    [in]s and obtains [in] by transfer; for a forward problem it is the
    mirror image. *)

module Iset : Set.S with type elt = int
module Imap : Map.S with type key = int

type direction = Forward | Backward

(** Lattice + transfer over [Vir.Ir] functions (the historical client
    interface, consumed by {!Make}). *)
module type DOMAIN = sig
  type t

  val direction : direction

  val boundary : Vir.Ir.func -> t
  (** Fact at the CFG boundary: function entry for a forward problem,
      every exit block (no successors) for a backward one. *)

  val bottom : Vir.Ir.func -> t
  (** Initial fact for every block; must be the identity of [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old_input new_input] replaces [join] once a block's input
      has been recomputed {!widen_delay} times; must over-approximate
      both arguments and stabilize infinite ascending chains.
      Finite-height domains simply reuse [join]. *)

  val transfer : Vir.Ir.func -> Vir.Ir.block -> t -> t
end

val widen_delay : int
(** Number of visits of one node before [widen] replaces plain joining. *)

(** Abstract directed graph the generic engine iterates over. *)
module type GRAPH = sig
  type t

  type node
  (** Node identifiers are used as hash-table keys, so they should be
      small immutable values (labels, addresses) with structural
      equality. *)

  val nodes : t -> node list
  (** All nodes in layout order.  Forward problems seed the worklist in
      this order, backward problems in reverse; facts are computed only
      for listed nodes.  Edges to nodes outside this list are ignored. *)

  val succs : t -> node -> node list
  val preds : t -> node -> node list
end

(** Lattice + transfer over an abstract {!GRAPH}. *)
module type GRAPH_DOMAIN = sig
  module G : GRAPH

  type t

  val direction : direction

  val boundary : G.t -> t
  (** Fact seeded at boundary nodes (see {!is_boundary}). *)

  val is_boundary : G.t -> G.node -> bool
  (** Whether the node receives the {!boundary} seed in addition to its
      neighbours' facts — entry node(s) for a forward problem, exit
      nodes for a backward one. *)

  val bottom : G.t -> t
  (** Initial fact for every node; must be the identity of [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val transfer : G.t -> G.node -> t -> t
end

(** Generic fixpoint engine over any {!GRAPH_DOMAIN}. *)
module Make_graph (D : GRAPH_DOMAIN) : sig
  type fact = D.t

  val solve :
    D.G.t -> (D.G.node, fact) Hashtbl.t * (D.G.node, fact) Hashtbl.t
end

(** [Vir.Ir] instantiation: facts are indexed by block label. *)
module Make (D : DOMAIN) : sig
  type fact = D.t

  val solve : Vir.Ir.func -> (int, fact) Hashtbl.t * (int, fact) Hashtbl.t
end

val liveness_solver :
  uses:(Vir.Ir.instr -> int list) ->
  def:(Vir.Ir.instr -> int option) ->
  term_uses:(Vir.Ir.terminator -> int list) ->
  Vir.Ir.func ->
  (int, Iset.t) Hashtbl.t * (int, Iset.t) Hashtbl.t
(** Backward liveness parameterized over use/def extraction (scalar and
    vector registers live in separate namespaces; lint reuses it for
    frame slots).  Block-level use/def summaries are precomputed once per
    call so huge straight-line blocks stay linear. *)

(** Scalar-register liveness; [Loop_branch] counters count as uses. *)
module Liveness : sig
  val solve :
    Vir.Ir.func -> (int, Iset.t) Hashtbl.t * (int, Iset.t) Hashtbl.t
end

(** Vector-register liveness. *)
module Vliveness : sig
  val solve :
    Vir.Ir.func -> (int, Iset.t) Hashtbl.t * (int, Iset.t) Hashtbl.t
end

(** Forward dominator analysis: [solve f] maps each reachable block
    label to the set of labels dominating it (including itself);
    unreachable blocks stay at the full label set. *)
module Dominators : sig
  val solve : Vir.Ir.func -> (int, Iset.t) Hashtbl.t
end

(** Reaching definitions.  A definition site is
    [(block label, instruction index, register)]; parameters enter as
    sites [(-1, param index, register)].  A register with no reaching
    definition reads as 0. *)
module Reaching : sig
  module Site : sig
    type t = int * int * int

    val compare : t -> t -> int
  end

  module Sset : Set.S with type elt = Site.t

  val solve :
    Vir.Ir.func -> (int, Sset.t) Hashtbl.t * (int, Sset.t) Hashtbl.t
end

(** Conditional constant propagation facts (flat lattice per register;
    the solver's reachability component makes it SCCP-grade: facts from
    unreached blocks stay [Unreached]). *)
module Constprop : sig
  type cval = Const of int | Top

  type t = Unreached | Env of cval Imap.t
  (** Inside [Env], an absent register means "still holds its initial
      0"; the canonical form never stores [Const 0]. *)

  val lookup : cval Imap.t -> int -> cval
  val set : cval Imap.t -> int -> cval -> cval Imap.t
  val join_cval : cval -> cval -> cval
  val join : t -> t -> t
  val equal : t -> t -> bool
  val operand : cval Imap.t -> Vir.Ir.operand -> cval
  val eval_instr : cval Imap.t -> Vir.Ir.instr -> cval Imap.t
  val solve : Vir.Ir.func -> (int, t) Hashtbl.t * (int, t) Hashtbl.t
end

(** Integer interval analysis (forward, widened after {!widen_delay}
    visits).  [min_int]/[max_int] double as -∞/+∞; all arithmetic
    saturates. *)
module Interval : sig
  type itv = { lo : int; hi : int }

  val top : itv
  val const : int -> itv
  val zero : itv
  val is_top : itv -> bool
  val add : itv -> itv -> itv
  val neg : itv -> itv
  val sub : itv -> itv -> itv
  val mul : itv -> itv -> itv
  val hull : itv -> itv -> itv
  val bool_itv : itv
  val eval_bin : Vir.Ir.binop -> itv -> itv -> itv

  type t = Unreached | Env of itv Imap.t
  (** As in {!Constprop}: an absent register is exactly 0. *)

  val lookup : itv Imap.t -> int -> itv
  val set : itv Imap.t -> int -> itv -> itv Imap.t
  val join : t -> t -> t
  val widen : t -> t -> t
  val equal : t -> t -> bool
  val operand : itv Imap.t -> Vir.Ir.operand -> itv
  val eval_instr : itv Imap.t -> Vir.Ir.instr -> itv Imap.t
  val solve : Vir.Ir.func -> (int, t) Hashtbl.t * (int, t) Hashtbl.t
end
