(* Generic worklist dataflow solver over [Vir.Ir] control-flow graphs.

   A client provides a lattice ([bottom]/[join]/[equal], with [widen] for
   infinite-height domains) and a per-block [transfer] function; [Make]
   returns a fixpoint solver usable in either direction.  The solver is
   deterministic: blocks are seeded in layout order (reverse layout order
   for backward problems) into a FIFO worklist, so two runs over the same
   function produce the same tables — the fitness pipeline depends on
   byte-identical binaries at any worker count.

   Facts are indexed by block label.  [solve] returns two tables,
   ([in_facts], [out_facts]): the fact at block entry and at block exit,
   regardless of direction.  For a backward problem the solver computes
   [out] by joining successor [in]s and obtains [in] by transfer; for a
   forward problem it is the mirror image. *)

open Vir.Ir
module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val direction : direction

  val boundary : func -> t
  (** Fact at the CFG boundary: function entry for a forward problem,
      every exit block (no successors) for a backward one. *)

  val bottom : func -> t
  (** Initial fact for every block; must be the identity of [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old_input new_input] replaces [join] once a block's input has
      been recomputed [widen_delay] times; must over-approximate both
      arguments and stabilize infinite ascending chains.  Finite-height
      domains simply reuse [join]. *)

  val transfer : func -> block -> t -> t
end

(* Visits of one block before [widen] replaces plain joining.  Small
   enough to bound interval iteration on deep loop nests, large enough to
   keep short chains exact. *)
let widen_delay = 4

(* The worklist engine itself is graph-agnostic: it only needs to
   enumerate nodes in a deterministic seeding order and follow edges in
   both directions.  [Make] below instantiates it for [Vir.Ir] functions;
   [Binsight] instantiates it for recovered binary CFGs. *)
module type GRAPH = sig
  type t

  type node
  (** Node identifiers are used as hash-table keys, so they should be
      small immutable values (labels, addresses) with structural
      equality. *)

  val nodes : t -> node list
  (** All nodes in layout order.  Forward problems seed the worklist in
      this order, backward problems in reverse; facts are computed only
      for listed nodes. *)

  val succs : t -> node -> node list
  val preds : t -> node -> node list
end

module type GRAPH_DOMAIN = sig
  module G : GRAPH

  type t

  val direction : direction

  val boundary : G.t -> t
  (** Fact at the CFG boundary: entry node(s) for a forward problem,
      exit nodes for a backward one (see {!is_boundary}). *)

  val is_boundary : G.t -> G.node -> bool
  (** Whether the node receives the {!boundary} seed in addition to its
      neighbours' facts. *)

  val bottom : G.t -> t
  (** Initial fact for every node; must be the identity of [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val transfer : G.t -> G.node -> t -> t
end

module Make_graph (D : GRAPH_DOMAIN) = struct
  type fact = D.t

  let solve (g : D.G.t) :
      (D.G.node, fact) Hashtbl.t * (D.G.node, fact) Hashtbl.t =
    let ns = D.G.nodes g in
    let n = List.length ns in
    let in_facts = Hashtbl.create (2 * n) in
    let out_facts = Hashtbl.create (2 * n) in
    let known = Hashtbl.create (2 * n) in
    List.iter
      (fun nd ->
        Hashtbl.replace known nd ();
        Hashtbl.replace in_facts nd (D.bottom g);
        Hashtbl.replace out_facts nd (D.bottom g))
      ns;
    let queue = Queue.create () in
    let queued = Hashtbl.create (2 * n) in
    let push nd =
      if Hashtbl.mem known nd && not (Hashtbl.mem queued nd) then begin
        Hashtbl.replace queued nd ();
        Queue.add nd queue
      end
    in
    (match D.direction with
    | Forward -> List.iter push ns
    | Backward -> List.iter push (List.rev ns));
    let visits = Hashtbl.create (2 * n) in
    while not (Queue.is_empty queue) do
      let nd = Queue.take queue in
      Hashtbl.remove queued nd;
      (* the side fed to [transfer]: in for forward, out for backward *)
      let neighbour_facts =
        match D.direction with
        | Forward ->
          D.G.preds g nd
          |> List.filter_map (fun p -> Hashtbl.find_opt out_facts p)
        | Backward ->
          D.G.succs g nd
          |> List.filter_map (fun s -> Hashtbl.find_opt in_facts s)
      in
      let seed = if D.is_boundary g nd then D.boundary g else D.bottom g in
      let joined = List.fold_left D.join seed neighbour_facts in
      let stored_input, stored_output =
        match D.direction with
        | Forward -> (Hashtbl.find in_facts nd, Hashtbl.find out_facts nd)
        | Backward -> (Hashtbl.find out_facts nd, Hashtbl.find in_facts nd)
      in
      let v = try Hashtbl.find visits nd with Not_found -> 0 in
      Hashtbl.replace visits nd (v + 1);
      let input =
        if v >= widen_delay then D.widen stored_input joined else joined
      in
      let output = D.transfer g nd input in
      (match D.direction with
      | Forward -> Hashtbl.replace in_facts nd input
      | Backward -> Hashtbl.replace out_facts nd input);
      if not (D.equal output stored_output) then begin
        (match D.direction with
        | Forward -> Hashtbl.replace out_facts nd output
        | Backward -> Hashtbl.replace in_facts nd output);
        let dependents =
          match D.direction with
          | Forward -> D.G.succs g nd
          | Backward -> D.G.preds g nd
        in
        List.iter push dependents
      end
    done;
    (in_facts, out_facts)
end

module Make (D : DOMAIN) = struct
  type fact = D.t

  (* [Vir.Ir] functions viewed as a graph of block labels.  Successor
     lists come straight from the terminators — including labels that do
     not name a block, which the engine's membership check then ignores,
     exactly as the pre-generic solver did. *)
  type graph = {
    f : func;
    by_label : (int, block) Hashtbl.t;
    preds : (int, int list) Hashtbl.t;
    entry : int;
  }

  module G = struct
    type t = graph
    type node = int

    let nodes g = List.map (fun b -> b.label) g.f.blocks
    let succs g l = successors (Hashtbl.find g.by_label l).term
    let preds g l = try Hashtbl.find g.preds l with Not_found -> []
  end

  module GD = struct
    module G = G

    type t = D.t

    let direction = D.direction
    let boundary (g : graph) = D.boundary g.f

    let is_boundary (g : graph) l =
      match D.direction with
      | Forward -> l = g.entry
      | Backward -> G.succs g l = []

    let bottom (g : graph) = D.bottom g.f
    let equal = D.equal
    let join = D.join
    let widen = D.widen

    let transfer (g : graph) l input =
      D.transfer g.f (Hashtbl.find g.by_label l) input
  end

  module S = Make_graph (GD)

  let solve (f : func) : (int, fact) Hashtbl.t * (int, fact) Hashtbl.t =
    let by_label = Hashtbl.create (2 * List.length f.blocks) in
    List.iter (fun b -> Hashtbl.replace by_label b.label b) f.blocks;
    let entry = match f.blocks with b :: _ -> b.label | [] -> -1 in
    S.solve { f; by_label; preds = predecessors f; entry }
end

(* ------------------------------------------------------------------ *)
(* Instance: liveness (backward, set-of-registers lattice)             *)
(* ------------------------------------------------------------------ *)

(* Scalar and vector registers live in separate namespaces with separate
   use/def accessors, so liveness is parameterized over the extraction
   functions.  Block-level use/def summaries are precomputed once per
   [solve] call — [transfer] runs on every worklist visit and the huge
   straight-line blocks full unrolling produces make rescanning
   quadratic. *)
let liveness_solver ~uses ~def ~term_uses (f : func) :
    (int, Iset.t) Hashtbl.t * (int, Iset.t) Hashtbl.t =
  let summary = Hashtbl.create 32 in
  List.iter
    (fun b ->
      let use = ref Iset.empty and defs = ref Iset.empty in
      List.iter
        (fun i ->
          List.iter
            (fun r -> if not (Iset.mem r !defs) then use := Iset.add r !use)
            (uses i);
          match def i with
          | Some d -> defs := Iset.add d !defs
          | None -> ())
        b.instrs;
      List.iter
        (fun r -> if not (Iset.mem r !defs) then use := Iset.add r !use)
        (term_uses b.term);
      Hashtbl.replace summary b.label (!use, !defs))
    f.blocks;
  let module D = struct
    type t = Iset.t

    let direction = Backward
    let boundary _ = Iset.empty
    let bottom _ = Iset.empty
    let equal = Iset.equal
    let join = Iset.union
    let widen = Iset.union

    let transfer _ b out =
      let use, defs = Hashtbl.find summary b.label in
      Iset.union use (Iset.diff out defs)
  end in
  let module S = Make (D) in
  S.solve f

module Liveness = struct
  (* scalar-register liveness; [Loop_branch] counters are uses via
     [term_uses] *)
  let solve f =
    liveness_solver ~uses:instr_uses ~def:instr_def ~term_uses f
end

module Vliveness = struct
  (* vector-register liveness: a reduction accumulator lives from its
     splat in the preheader, through the loop body, to the reduce after
     the loop *)
  let solve f =
    liveness_solver ~uses:instr_vuses ~def:instr_vdef
      ~term_uses:(fun _ -> [])
      f
end

(* ------------------------------------------------------------------ *)
(* Instance: dominators (forward, intersection lattice)                *)
(* ------------------------------------------------------------------ *)

module Dominators = struct
  (* dom(b) = {b} ∪ ⋂ over predecessors p of dom(p); initialized to the
     full label set so the solver converges down to the greatest
     fixpoint, which is the true dominator relation for every reachable
     block.  Unreachable blocks stay at the full set (the identity of
     intersection), so they never pollute reachable results. *)
  let solve (f : func) =
    let all =
      List.fold_left (fun acc b -> Iset.add b.label acc) Iset.empty f.blocks
    in
    let module D = struct
      type t = Iset.t

      let direction = Forward
      let boundary _ = Iset.empty
      let bottom _ = all
      let equal = Iset.equal
      let join = Iset.inter
      let widen = Iset.inter
      let transfer _ b input = Iset.add b.label input
    end in
    let module S = Make (D) in
    let _, out = S.solve f in
    out
end

(* ------------------------------------------------------------------ *)
(* Instance: reaching definitions (forward, set-of-sites lattice)      *)
(* ------------------------------------------------------------------ *)

module Reaching = struct
  (* A definition site is (block label, instruction index, register);
     parameters are sites (-1, i, r).  A register with no reaching
     definition reads as 0 (interpreter and codegen agree on that for
     never-defined registers), so the empty set is meaningful. *)
  module Site = struct
    type t = int * int * int

    let compare = compare
  end

  module Sset = Set.Make (Site)

  let kill_reg r s = Sset.filter (fun (_, _, r') -> r' <> r) s

  let block_transfer b s =
    let s = ref s in
    List.iteri
      (fun idx i ->
        match instr_def i with
        | Some d -> s := Sset.add (b.label, idx, d) (kill_reg d !s)
        | None -> ())
      b.instrs;
    !s

  let solve (f : func) =
    let module D = struct
      type t = Sset.t

      let direction = Forward

      let boundary f =
        List.fold_left
          (fun acc (i, p) -> Sset.add (-1, i, p) acc)
          Sset.empty
          (List.mapi (fun i p -> (i, p)) f.params)

      let bottom _ = Sset.empty
      let equal = Sset.equal
      let join = Sset.union
      let widen = Sset.union
      let transfer _ = block_transfer
    end in
    let module S = Make (D) in
    S.solve f
end

(* ------------------------------------------------------------------ *)
(* Instance: constant propagation (forward, flat lattice per register)  *)
(* ------------------------------------------------------------------ *)

module Constprop = struct
  type cval = Const of int | Top

  (* [Unreached] is the solver bottom (identity of join); inside [Env],
     an absent register means "still holds its initial 0" — the
     interpreter and the VM both zero-initialize register state, so this
     is exact, and the canonical form never stores [Const 0]. *)
  type t = Unreached | Env of cval Imap.t

  let lookup env r =
    match Imap.find_opt r env with Some v -> v | None -> Const 0

  let set env r v =
    match v with Const 0 -> Imap.remove r env | _ -> Imap.add r v env

  let join_cval a b =
    match (a, b) with
    | Const x, Const y when x = y -> Const x
    | _ -> Top

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env ea, Env eb ->
      Env
        (Imap.merge
           (fun _ va vb ->
             let v =
               join_cval
                 (Option.value va ~default:(Const 0))
                 (Option.value vb ~default:(Const 0))
             in
             match v with Const 0 -> None | _ -> Some v)
           ea eb)

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env ea, Env eb -> Imap.equal ( = ) ea eb
    | _ -> false

  let operand env = function
    | Imm n -> Const n
    | Reg r -> lookup env r

  let eval_instr env i =
    match instr_def i with
    | None -> env
    | Some d -> (
      match i with
      | Mov (_, src) -> set env d (operand env src)
      | Bin (op, _, a, b) -> (
        match (operand env a, operand env b) with
        | Const x, Const y -> set env d (Const (eval_binop op x y))
        | _ -> set env d Top)
      | Un (op, _, a) -> (
        match operand env a with
        | Const x -> set env d (Const (eval_unop op x))
        | Top -> set env d Top)
      | Select (_, c, x, y) -> (
        match operand env c with
        | Const n -> set env d (operand env (if n <> 0 then x else y))
        | Top -> set env d (join_cval (operand env x) (operand env y)))
      | Load _ | Slot_load _ | Call _ | Vreduce _ | Read_input _
      | Input_len _ ->
        set env d Top
      | Store _ | Slot_store _ | Vload _ | Vstore _ | Vbin _ | Vsplat _
      | Vpack _ | Print_int _ | Print_char _ ->
        env)

  (* [Loop_branch] decrements its counter register as part of the
     terminator, so the value any successor sees is not the value the
     block's instructions left behind.  Clearing the counter to [Top] at
     block exit keeps the out-facts sound — without it, a constant seeded
     before the loop would wrongly survive every iteration. *)
  let kill_loop_counter b env =
    match b.term with Loop_branch (r, _, _) -> Imap.add r Top env | _ -> env

  let block_transfer b = function
    | Unreached -> Unreached
    | Env env -> Env (kill_loop_counter b (List.fold_left eval_instr env b.instrs))

  let solve (f : func) =
    let module D = struct
      type t' = t
      type t = t'

      let direction = Forward

      let boundary f =
        Env
          (List.fold_left (fun env p -> Imap.add p Top env) Imap.empty f.params)

      let bottom _ = Unreached
      let equal = equal
      let join = join
      let widen = join
      let transfer _ = block_transfer
    end in
    let module S = Make (D) in
    S.solve f
end

(* ------------------------------------------------------------------ *)
(* Instance: integer intervals (forward, widened)                      *)
(* ------------------------------------------------------------------ *)

module Interval = struct
  (* [min_int]/[max_int] double as -∞/+∞; every arithmetic helper
     saturates, so a bound that would overflow becomes infinite rather
     than wrapping. *)
  type itv = { lo : int; hi : int }

  let top = { lo = min_int; hi = max_int }
  let const n = { lo = n; hi = n }
  let zero = const 0
  let is_top v = v.lo = min_int && v.hi = max_int

  let sat_add a b =
    if a = min_int || b = min_int then min_int
    else if a = max_int || b = max_int then max_int
    else
      let s = a + b in
      if a > 0 && b > 0 && s < 0 then max_int
      else if a < 0 && b < 0 && s >= 0 then min_int
      else s

  let sat_neg a = if a = min_int then max_int else if a = max_int then min_int else -a

  (* products only on comfortably small finite bounds; anything else is ∞ *)
  let sat_mul a b =
    let big = 1 lsl 30 in
    if abs a >= big || abs b >= big then
      if (a > 0 && b > 0) || (a < 0 && b < 0) then max_int else min_int
    else a * b

  let add x y = { lo = sat_add x.lo y.lo; hi = sat_add x.hi y.hi }
  let neg x = { lo = sat_neg x.hi; hi = sat_neg x.lo }
  let sub x y = add x (neg y)

  let mul x y =
    if is_top x || is_top y then top
    else
      let cands =
        [ sat_mul x.lo y.lo; sat_mul x.lo y.hi; sat_mul x.hi y.lo;
          sat_mul x.hi y.hi ]
      in
      {
        lo = List.fold_left min max_int cands;
        hi = List.fold_left max min_int cands;
      }

  let hull x y = { lo = min x.lo y.lo; hi = max x.hi y.hi }
  let bool_itv = { lo = 0; hi = 1 }

  let eval_bin op x y =
    match op with
    | Add -> add x y
    | Sub -> sub x y
    | Mul -> mul x y
    | Slt | Sle | Sgt | Sge | Seq | Sne -> bool_itv
    | Mod ->
      (* OCaml [mod] follows the dividend's sign; [eval_binop] maps a
         zero divisor to 0 *)
      if y.lo = y.hi && y.lo > 0 && y.lo < max_int then
        if x.lo >= 0 then { lo = 0; hi = y.lo - 1 }
        else { lo = -(y.lo - 1); hi = y.lo - 1 }
      else top
    | And ->
      (* a land m with a constant non-negative mask is within [0, m] *)
      if y.lo = y.hi && y.lo >= 0 then { lo = 0; hi = y.lo }
      else if x.lo = x.hi && x.lo >= 0 then { lo = 0; hi = x.lo }
      else top
    | Div | Or | Xor | Shl | Shr -> top

  type t = Unreached | Env of itv Imap.t
  (* absent register = still 0, as in [Constprop] *)

  let lookup env r = match Imap.find_opt r env with Some v -> v | None -> zero

  let set env r v =
    if v.lo = 0 && v.hi = 0 then Imap.remove r env else Imap.add r v env

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env ea, Env eb ->
      Env
        (Imap.merge
           (fun _ va vb ->
             let v =
               hull (Option.value va ~default:zero)
                 (Option.value vb ~default:zero)
             in
             if v.lo = 0 && v.hi = 0 then None else Some v)
           ea eb)

  let widen a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env ea, Env eb ->
      Env
        (Imap.merge
           (fun _ va vb ->
             let o = Option.value va ~default:zero in
             let n = Option.value vb ~default:zero in
             let v =
               {
                 lo = (if n.lo < o.lo then min_int else o.lo);
                 hi = (if n.hi > o.hi then max_int else o.hi);
               }
             in
             if v.lo = 0 && v.hi = 0 then None else Some v)
           ea eb)

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env ea, Env eb -> Imap.equal ( = ) ea eb
    | _ -> false

  let operand env = function Imm n -> const n | Reg r -> lookup env r

  let eval_instr env i =
    match instr_def i with
    | None -> env
    | Some d -> (
      match i with
      | Mov (_, src) -> set env d (operand env src)
      | Bin (op, _, a, b) -> set env d (eval_bin op (operand env a) (operand env b))
      | Un (Neg, _, a) -> set env d (neg (operand env a))
      | Un (Not, _, a) ->
        let x = operand env a in
        (* lnot x = -x - 1 *)
        set env d (sub (neg x) (const 1))
      | Select (_, c, x, y) -> (
        let vc = operand env c in
        if vc.lo > 0 || vc.hi < 0 then set env d (operand env x)
        else if vc.lo = 0 && vc.hi = 0 then set env d (operand env y)
        else set env d (hull (operand env x) (operand env y)))
      | Load _ | Slot_load _ | Call _ | Vreduce _ | Read_input _
      | Input_len _ ->
        set env d top
      | Store _ | Slot_store _ | Vload _ | Vstore _ | Vbin _ | Vsplat _
      | Vpack _ | Print_int _ | Print_char _ ->
        env)

  (* as in {!Constprop}: a [Loop_branch] terminator mutates its counter,
     so its interval must not flow past the block exit *)
  let kill_loop_counter b env =
    match b.term with Loop_branch (r, _, _) -> Imap.add r top env | _ -> env

  let block_transfer b = function
    | Unreached -> Unreached
    | Env env -> Env (kill_loop_counter b (List.fold_left eval_instr env b.instrs))

  let solve (f : func) =
    let module D = struct
      type t' = t
      type t = t'

      let direction = Forward

      let boundary f =
        Env
          (List.fold_left (fun env p -> Imap.add p top env) Imap.empty f.params)

      let bottom _ = Unreached
      let equal = equal
      let join = join
      let widen = widen
      let transfer _ = block_transfer
    end in
    let module S = Make (D) in
    S.solve f
end
