(* A chunked fork-join pool over OCaml 5 domains.

   Workers block on [cv] waiting for tasks; [map] enqueues one task per
   contiguous chunk, helps drain the queue from the submitting domain,
   then waits on a per-batch latch for chunks still running elsewhere.
   Results and exceptions land in per-index slots, so nothing about the
   outcome depends on which worker ran which chunk or in what order. *)

type t = {
  size : int;
  mutex : Mutex.t;
  cv : Condition.t;  (* signalled on new tasks and on shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (* emptied by shutdown *)
}

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.tasks && not pool.stop do
      Condition.wait pool.cv pool.mutex
    done;
    match Queue.take_opt pool.tasks with
    | Some task ->
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    | None ->
      (* stop && empty *)
      Mutex.unlock pool.mutex
  in
  loop ()

(* Process-wide count of worker domains spawned and not yet joined.
   Purely observational — it exists so tests can assert that pool owners
   (e.g. a pool-less [Tuner.tune]) don't leak domains. *)
let live = Atomic.make 0

let live_domains () = Atomic.get live

let create n =
  let size = max 1 n in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      cv = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  if size > 1 then begin
    pool.workers <-
      Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
    Atomic.fetch_and_add live (size - 1) |> ignore
  end;
  pool

let size pool = pool.size

let default_size () = Domain.recommended_domain_count ()

let shutdown pool =
  let workers = pool.workers in
  pool.workers <- [||];
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join workers;
  Atomic.fetch_and_add live (-Array.length workers) |> ignore

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let in_worker pool =
  let me = Domain.self () in
  Array.exists (fun d -> Domain.get_id d = me) pool.workers

(* A latch the submitter waits on; workers count chunks down. *)
type latch = {
  l_mutex : Mutex.t;
  l_cv : Condition.t;
  mutable remaining : int;
}

let latch_done l =
  Mutex.lock l.l_mutex;
  l.remaining <- l.remaining - 1;
  if l.remaining = 0 then Condition.broadcast l.l_cv;
  Mutex.unlock l.l_mutex

let latch_wait l =
  Mutex.lock l.l_mutex;
  while l.remaining > 0 do
    Condition.wait l.l_cv l.l_mutex
  done;
  Mutex.unlock l.l_mutex

let map ?chunk_size pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.size <= 1 || n = 1 || Array.length pool.workers = 0
          || in_worker pool then Array.map f xs
  else begin
    let chunk =
      match chunk_size with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.map: chunk_size %d" c)
      | None -> (n + pool.size - 1) / pool.size
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let errors = Array.make n None in
    let latch =
      { l_mutex = Mutex.create (); l_cv = Condition.create (); remaining = nchunks }
    in
    let run_chunk k () =
      Telemetry.with_span "pool.chunk" (fun () ->
          let lo = k * chunk in
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            match f xs.(i) with
            | y -> results.(i) <- Some y
            | exception e -> errors.(i) <- Some e
          done);
      latch_done latch
    in
    Mutex.lock pool.mutex;
    for k = 0 to nchunks - 1 do
      Queue.add (run_chunk k) pool.tasks
    done;
    Telemetry.add_count "pool.batches";
    Telemetry.add_count ~by:nchunks "pool.chunks";
    Telemetry.set_gauge "pool.queue_depth"
      (float_of_int (Queue.length pool.tasks));
    Condition.broadcast pool.cv;
    Mutex.unlock pool.mutex;
    (* The submitting domain helps drain the queue instead of blocking on
       the latch: with [size - 1] spawned workers, this is what makes a
       [-j N] pool actually N lanes wide.  Helping may also pick up
       chunks of a concurrent batch — that is still useful work, and
       results land in per-index slots either way. *)
    let rec help () =
      Mutex.lock pool.mutex;
      let task = Queue.take_opt pool.tasks in
      Mutex.unlock pool.mutex;
      match task with
      | Some task ->
        task ();
        help ()
      | None -> ()
    in
    help ();
    latch_wait latch;
    (* deterministic propagation: lowest failing index wins *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* every index ran: no error, so a result *))
      results
  end

let map_list ?chunk_size pool f l =
  Array.to_list (map ?chunk_size pool f (Array.of_list l))

let map_reduce ?chunk_size pool ~map:f ~fold ~init xs =
  Array.fold_left fold init (map ?chunk_size pool f xs)
