(** A fixed-size domain worker pool for deterministic data parallelism.

    The tuning loop's dominant cost is embarrassingly parallel — compile a
    candidate flag vector, measure its NCD — so the engine only needs a
    simple shape: split an immutable input array into contiguous chunks,
    hand the chunks to [n] worker domains, and reassemble results by input
    index.  There is deliberately no work stealing and no futures layer:
    static chunking keeps scheduling decisions out of the result entirely,
    which is what makes [j]-independence testable (the differential suite
    asserts bit-identical tuning outcomes at every [-j]).

    Guarantees:
    - {b Ordering}: [map pool f xs] returns exactly [Array.map f xs] —
      element [i] of the result is [f xs.(i)], whatever the scheduling.
    - {b Exceptions}: if any application raises, the whole batch still
      runs to completion, then the exception of the {e lowest} failing
      input index is re-raised in the caller — again independent of
      worker timing.
    - {b Re-entrancy}: calling [map] from inside a pool worker (nested
      parallelism) degrades to inline sequential execution instead of
      deadlocking, so parallel call sites compose freely.

    A pool of size ≤ 1 spawns no domains and runs everything inline; all
    code paths are otherwise identical, so [-j 1] is the sequential
    reference the differential tests compare against. *)

type t

val create : int -> t
(** [create n] starts a pool of [n] parallel lanes: [n - 1] spawned
    domains plus the submitting caller itself, which helps execute
    queued chunks while its batch is in flight (so [-j n] delivers
    [n]-way throughput, not [n - 1]).  [n <= 1] creates an inline pool
    with no domains.  Pools are lightweight; idle workers block on a
    condition variable. *)

val size : t -> int
(** Number of parallel lanes ([n] as passed to {!create}, at least 1). *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val map : ?chunk_size:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element, in parallel across the
    pool, preserving input order in the result.  [chunk_size] controls
    the granularity of the work units (default: [ceil (n / size)], i.e.
    one contiguous chunk per worker); pass [~chunk_size:1] when items are
    few and heavy (e.g. whole tuning jobs) so they balance across
    workers. *)

val map_list : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; same guarantees. *)

val map_reduce :
  ?chunk_size:int ->
  t ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [map_reduce pool ~map ~fold ~init xs] maps in parallel, then folds
    the results {e sequentially in input order} — the fold is therefore
    deterministic even when [fold] is not associative. *)

val shutdown : t -> unit
(** Terminate the worker domains and join them.  Idempotent.  Using the
    pool after [shutdown] runs inline. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, always shutting it down
    (including on exceptions). *)

val live_domains : unit -> int
(** Process-wide count of worker domains spawned by {!create} and not
    yet joined by {!shutdown}.  Observational, for leak regression
    tests: balanced create/shutdown pairs leave it unchanged. *)
