(* Pareto-front archive for vector fitness (ROADMAP item #1).

   The archive keeps a set of mutually non-dominated (genome, fitness
   vector) entries — every axis is maximized.  Inserts are passive with
   respect to the search: they consume no randomness and never feed back
   into strategy decisions, so wiring an archive into {!Engine.run}
   leaves the scalar search trace bit-identical (the frozen-GA
   differential and the table1 sentinel both hold with the archive on).

   Invariants (QCheck-locked in test/test_search.ml):
   - no member dominates another, and no two members share a fitness
     vector (dedup keeps the first genome seen with a vector);
   - the member set is insert-order independent up to front equality
     (for an unbounded archive);
   - when the bound forces a prune, the crowding-distance victim is
     never an axis extreme, so the corners of the front survive. *)

type entry = { e_genome : bool array; e_fitness : float array }

type t = {
  bound : int;  (** max entries kept; crowding-prunes one past this *)
  mutable entries : entry list;  (** unordered; see invariants above *)
}

let default_bound = 64

let create ?(bound = default_bound) () = { bound = max 1 bound; entries = [] }

let size t = List.length t.entries

(* [a] dominates [b]: at least as good on every axis, strictly better on
   one.  Equal vectors dominate in neither direction. *)
let dominates a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Pareto.dominates: fitness arity mismatch";
  let ge = ref true and gt = ref false in
  for i = 0 to n - 1 do
    if a.(i) < b.(i) then ge := false;
    if a.(i) > b.(i) then gt := true
  done;
  !ge && !gt

let vec_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
  !ok

(* Lexicographic vector order — the deterministic tie-break everywhere a
   choice between equally-ranked entries must not depend on list
   order. *)
let vec_compare a b = compare (Array.to_list a) (Array.to_list b)

(* NSGA-II crowding distance per entry: per axis, extremes score
   [infinity], interior entries the normalized gap between their sorted
   neighbours, summed over axes.  The axis sort breaks value ties by the
   full vector so the distances are a function of the entry set alone. *)
let crowding_distances entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let d = Array.make n 0.0 in
  if n > 0 then begin
    let naxes = Array.length arr.(0).e_fitness in
    for ax = 0 to naxes - 1 do
      let idx = Array.init n (fun i -> i) in
      Array.sort
        (fun i j ->
          let c = compare arr.(i).e_fitness.(ax) arr.(j).e_fitness.(ax) in
          if c <> 0 then c else vec_compare arr.(i).e_fitness arr.(j).e_fitness)
        idx;
      d.(idx.(0)) <- infinity;
      d.(idx.(n - 1)) <- infinity;
      let lo = arr.(idx.(0)).e_fitness.(ax)
      and hi = arr.(idx.(n - 1)).e_fitness.(ax) in
      let span = hi -. lo in
      if span > 0.0 then
        for k = 1 to n - 2 do
          d.(idx.(k)) <-
            d.(idx.(k))
            +. (arr.(idx.(k + 1)).e_fitness.(ax)
               -. arr.(idx.(k - 1)).e_fitness.(ax))
               /. span
        done
    done
  end;
  (arr, d)

(* Evict the single most crowded (lowest-distance) entry; ties fall to
   the lexicographically smallest vector.  Axis extremes carry infinite
   distance, so they are only ever evicted when every entry is an
   extreme — a front no larger than 2·axes, which a sane bound never
   forces. *)
let prune_one t =
  let arr, d = crowding_distances t.entries in
  let victim = ref 0 in
  Array.iteri
    (fun i _ ->
      if
        d.(i) < d.(!victim)
        || (d.(i) = d.(!victim)
           && vec_compare arr.(i).e_fitness arr.(!victim).e_fitness < 0)
      then victim := i)
    arr;
  t.entries <-
    List.filteri (fun i _ -> i <> !victim) (Array.to_list arr);
  arr.(!victim)

(* Insert a candidate.  Returns [true] iff the candidate is a member of
   the front after the insert (i.e. it was non-dominated, not a
   duplicate vector, and not itself the crowding victim). *)
let insert t genome fitness =
  (match t.entries with
  | e :: _ when Array.length e.e_fitness <> Array.length fitness ->
    invalid_arg "Pareto.insert: fitness arity mismatch"
  | _ -> ());
  let rejected =
    List.exists
      (fun e -> vec_equal e.e_fitness fitness || dominates e.e_fitness fitness)
      t.entries
  in
  if rejected then false
  else begin
    let survivors =
      List.filter (fun e -> not (dominates fitness e.e_fitness)) t.entries
    in
    let entry = { e_genome = Array.copy genome; e_fitness = Array.copy fitness } in
    t.entries <- survivors @ [ entry ];
    if List.length t.entries > t.bound then begin
      let victim = prune_one t in
      not (victim == entry)
    end
    else true
  end

(* The front in a deterministic order: fitness vectors descending
   lexicographically (vectors are unique by the dedup invariant). *)
let front t =
  List.map
    (fun e -> (Array.copy e.e_genome, Array.copy e.e_fitness))
    (List.sort (fun a b -> vec_compare b.e_fitness a.e_fitness) t.entries)

let is_non_dominated entries =
  List.for_all
    (fun (_, a) ->
      List.for_all
        (fun (_, b) -> a == b || not (dominates b a))
        entries)
    entries
