(* The strategy contract of the pluggable search layer.

   A strategy is an ask/tell loop: it proposes a whole batch of genomes
   (compiler flag vectors), the engine scores the batch — deduplicated
   against the run's evaluation cache, truncated to the remaining
   budget, fanned out through whatever batch hook the caller installed
   (the tuner's compile + NCD pipeline over a Parallel.Pool) — and the
   scores come back through [tell].  All shared bookkeeping (budget,
   best-so-far, history, plateau termination, telemetry) lives in
   {!Engine}; a strategy only decides {e what to try next}. *)

type problem = {
  ngenes : int;  (** genome length: the profile's flag count *)
  seeds : bool array list;
      (** the -Ox preset vectors; every strategy's first batch must
          contain all of them (never-discard-seeds invariant) *)
  repair : bool array -> bool array;
      (** constraint repair; strategies apply it to every proposal *)
}

type termination = {
  max_evaluations : int;
  plateau_window : int;
  plateau_epsilon : float;
}

let default_termination =
  { max_evaluations = 2000; plateau_window = 120; plateau_epsilon = 0.0035 }

(* What a strategy is told about one evaluated genome: the raw objective
   vector (axis order fixed by the caller's {!Objective.spec}) plus the
   engine's scalarization of it.  Every strategy decision — tournament
   ranks, hill-climb adoption, Metropolis acceptance, bandit credit —
   compares [scalar] only, so on a 1-objective run (where the engine's
   scalarization is the identity) the decision trace is bit-identical to
   the pre-vector float engine. *)
type score = { vec : float array; scalar : float }

type outcome = {
  best : bool array;  (** best genome under the scalarization *)
  best_fitness : float;  (** its scalarized fitness *)
  best_vector : float array;  (** its raw objective vector *)
  evaluations : int;
  history : (int * float) list;
  front : (bool array * float array) list;
      (** the Pareto archive at termination, vectors descending
          lexicographically; a singleton on 1-objective runs *)
}

module type STRATEGY = sig
  val name : string
  (** Registry / telemetry name ([search.<name>.*] spans and gauges). *)

  type state

  val init :
    rng:Util.Rng.t -> problem:problem -> termination:termination -> state
  (** Create the strategy's private state.  Must not evaluate anything
      and should not consume [rng] (so seeding stays with the first
      {!ask}). *)

  val ask : state -> rng:Util.Rng.t -> bool array array
  (** Propose the next batch.  Every genome must already be
      [problem.repair]-fixed.  The {e first} batch must contain every
      repaired seed.  Returning [[||]] means the strategy is exhausted
      and ends the search. *)

  val tell :
    state ->
    rng:Util.Rng.t ->
    genomes:bool array array ->
    scores:score option array ->
    unit
  (** Receive the scores for the batch the last {!ask} proposed, element
      for element.  [None] marks a genome the budget ran out before —
      treat it as unevaluated.  Cached genomes come back with their
      cached score at zero budget cost.  Strategies rank candidates by
      [scalar]; [vec] is along for archive-aware extensions. *)
end

type t = (module STRATEGY)

let name (module S : STRATEGY) = S.name

let genome_key g =
  String.init (Array.length g) (fun i -> if g.(i) then '1' else '0')

let random_genome rng ngenes = Array.init ngenes (fun _ -> Util.Rng.bool rng)

(* The shared seed batch: every repaired -Ox seed first (in order), then
   random repaired genomes up to [target].  Used by the non-GA
   strategies; the GA builds its initial population itself to stay
   bit-identical with the pre-refactor engine. *)
let seed_batch ~rng ~problem ~target =
  let seeds = List.map (fun s -> problem.repair (Array.copy s)) problem.seeds in
  let extra =
    List.init
      (max 0 (target - List.length seeds))
      (fun _ -> problem.repair (random_genome rng problem.ngenes))
  in
  Array.of_list (seeds @ extra)
