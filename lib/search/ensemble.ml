(* OpenTuner-style AUC-bandit ensemble (BinTuner's host harness,
   paper §3.2).

   The ensemble instantiates one private sub-state per sub-strategy and,
   each generation, hands the whole batch to one of them.  The pick is a
   sliding-window area-under-curve bandit: a sub earns credit every time
   a batch it proposed improved the global best, weighted towards recent
   history (position-weighted within the window, the AUC shape OpenTuner
   uses), plus a UCB exploration bonus so cold arms keep getting
   sampled.  Subs never see each other's batches — they only compete for
   the evaluation budget. *)

(* A sub-strategy's [state] type is abstract, so an arm wraps it in
   closures at [init] time. *)
type arm = {
  arm_name : string;
  arm_ask : rng:Util.Rng.t -> bool array array;
  arm_tell :
    rng:Util.Rng.t ->
    genomes:bool array array ->
    scores:Strategy.score option array ->
    unit;
  mutable uses : int;
}

let make_arm (module S : Strategy.STRATEGY) ~rng ~problem ~termination =
  let state = S.init ~rng ~problem ~termination in
  {
    arm_name = S.name;
    arm_ask = (fun ~rng -> S.ask state ~rng);
    arm_tell = (fun ~rng ~genomes ~scores -> S.tell state ~rng ~genomes ~scores);
    uses = 0;
  }

let default_subs () =
  [ Genetic.strategy (); Local.hill_climb (); Local.anneal (); Baseline.random () ]

let strategy ?(window = 50) ?(exploration = 0.5) ?subs () : Strategy.t =
  (module struct
    let name = "ensemble"

    type state = {
      arms : arm array;
      (* (arm index, improved-global-best?) per batch, newest first,
         truncated to [window] *)
      mutable results : (int * bool) list;
      mutable last : int;  (** arm the pending batch came from *)
      mutable best_fitness : float;
      mutable round_robin : int;  (** arms still owed a first pick *)
    }

    let init ~rng ~problem ~termination =
      let subs = match subs with Some s -> s | None -> default_subs () in
      let arms =
        Array.of_list
          (List.map (fun s -> make_arm s ~rng ~problem ~termination) subs)
      in
      if Array.length arms = 0 then invalid_arg "Ensemble: no sub-strategies";
      {
        arms;
        results = [];
        last = 0;
        best_fitness = neg_infinity;
        round_robin = 0;
      }

    (* Sliding-window AUC credit: within the window an improvement in the
       most recent batch weighs [window], one about to fall out weighs 1.
       Score = normalized credit + UCB exploration term; an unused arm
       scores infinity so it is tried before any bandit math runs. *)
    let auc_score st i =
      if st.arms.(i).uses = 0 then infinity
      else begin
        let n = List.length st.results in
        let credit = ref 0.0 and weight = ref 0.0 in
        List.iteri
          (fun pos (arm, improved) ->
            if arm = i then begin
              let w = float_of_int (n - pos) in
              weight := !weight +. w;
              if improved then credit := !credit +. w
            end)
          st.results;
        let exploitation = if !weight > 0.0 then !credit /. !weight else 0.0 in
        exploitation
        +. exploration
           *. sqrt
                (2.0 *. log (float_of_int (max 1 n))
                /. float_of_int st.arms.(i).uses)
      end

    let pick st =
      if st.round_robin < Array.length st.arms then begin
        (* every arm gets one unconditional pick before the bandit runs *)
        let i = st.round_robin in
        st.round_robin <- st.round_robin + 1;
        i
      end
      else begin
        (* argmax, lowest index wins ties *)
        let best = ref 0 and best_score = ref (auc_score st 0) in
        for i = 1 to Array.length st.arms - 1 do
          let s = auc_score st i in
          if s > !best_score then begin
            best := i;
            best_score := s
          end
        done;
        !best
      end

    let rec ask_arm st ~rng ~tried i =
      if tried >= Array.length st.arms then [||]
      else begin
        let arm = st.arms.(i) in
        let batch = arm.arm_ask ~rng in
        if Array.length batch > 0 then begin
          st.last <- i;
          arm.uses <- arm.uses + 1;
          Telemetry.add_count ("search.ensemble.pick." ^ arm.arm_name);
          batch
        end
        else
          (* an exhausted sub yields its turn; only give up when every
             arm declines in the same round *)
          ask_arm st ~rng ~tried:(tried + 1) ((i + 1) mod Array.length st.arms)
      end

    let ask st ~rng = ask_arm st ~rng ~tried:0 (pick st)

    let tell st ~rng ~genomes ~scores =
      let improved = ref false in
      Array.iter
        (fun s ->
          match s with
          | Some sc when sc.Strategy.scalar > st.best_fitness ->
            st.best_fitness <- sc.Strategy.scalar;
            improved := true
          | _ -> ())
        scores;
      st.results <- (st.last, !improved) :: st.results;
      if List.length st.results > window then
        st.results <- List.filteri (fun i _ -> i < window) st.results;
      st.arms.(st.last).arm_tell ~rng ~genomes ~scores;
      Array.iteri
        (fun i a ->
          let s = auc_score st i in
          Telemetry.set_gauge
            ("search.ensemble.credit." ^ a.arm_name)
            (if s = infinity then 1.0 else s))
        st.arms
  end)
