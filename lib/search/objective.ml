(* Named fitness axes and their scalarization (ROADMAP item #1).

   An objective spec is an ordered list of (axis, weight) pairs — the
   axis order fixes the meaning of every fitness vector that flows
   through {!Engine.run}, the Pareto archive, the tuner database and
   BENCH_pareto.json.  All axes are maximized:

   - [ncd]      binary difference against the caller's baseline (the
                paper's objective); injected, because the LZ machinery
                and the baseline live with the tuner;
   - [gadgets]  negated code-reuse gadget census size (Brown et al.,
                "Not So Fast"): fewer unique gadget tails is better;
   - [size]     negated binary size in bytes;
   - [evasion]  provenance-classifier evasion (BinPro adversary):
                the classifier's distance to its nearest preset
                centroid; injected, because the trained model is the
                caller's.

   The static axes ([gadgets], [size]) are computed from one shared
   {!Binsight.Report.inspect} call per distinct binary, memoized in a
   [Compress.Sizecache]-style content-addressed LRU; the injected axes
   get their own per-axis memos so re-proposed genomes never re-pay
   classification or compression. *)

type axis = Ncd | Gadgets | Size | Evasion

let all_axes = [ Ncd; Gadgets; Size; Evasion ]

let axis_name = function
  | Ncd -> "ncd"
  | Gadgets -> "gadgets"
  | Size -> "size"
  | Evasion -> "evasion"

let axis_of_name = function
  | "ncd" -> Ncd
  | "gadgets" -> Gadgets
  | "size" -> Size
  | "evasion" -> Evasion
  | other ->
    invalid_arg
      (Printf.sprintf "Objective: unknown axis %S (expected %s)" other
         (String.concat "|" (List.map axis_name all_axes)))

type spec = (axis * float) list

let default : spec = [ (Ncd, 1.0) ]

let names spec = List.map (fun (a, _) -> axis_name a) spec
let arity = List.length

(* The paper's original problem: one NCD axis at unit weight.  This is
   the case every scalar bit-identity sentinel runs through. *)
let is_scalar_ncd = function [ (Ncd, w) ] -> w = 1.0 | _ -> false

(* "ncd,gadgets:0.5,size" — comma-separated axes, each optionally
   weighted with [:w].  Duplicate axes and non-positive weights are
   rejected; an empty spec is rejected. *)
let parse s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then invalid_arg "Objective.parse: empty objective spec";
  let parse_one p =
    match String.index_opt p ':' with
    | None -> (axis_of_name (String.trim p), 1.0)
    | Some i ->
      let name = String.trim (String.sub p 0 i) in
      let w = String.trim (String.sub p (i + 1) (String.length p - i - 1)) in
      let w =
        match float_of_string_opt w with
        | Some w when w > 0.0 && w = w (* not nan *) -> w
        | _ ->
          invalid_arg
            (Printf.sprintf
               "Objective.parse: bad weight %S for axis %S (want a \
                positive float)"
               w name)
      in
      (axis_of_name name, w)
  in
  let spec = List.map parse_one parts in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (a, _) ->
      if Hashtbl.mem seen a then
        invalid_arg
          (Printf.sprintf "Objective.parse: duplicate axis %S" (axis_name a));
      Hashtbl.replace seen a ())
    spec;
  spec

let to_string spec =
  String.concat ","
    (List.map
       (fun (a, w) ->
         if w = 1.0 then axis_name a
         else Printf.sprintf "%s:%g" (axis_name a) w)
       spec)

(* Weighted-sum scalarization.  The 1-axis unit-weight case returns the
   single component unchanged — [1.0 *. f] is [f] in IEEE, but keeping
   it literal makes the scalar path's bit-identity self-evident — and
   the general case folds from the first term (never from [0.0], which
   would lose the sign of [-0.0]). *)
let scalarize spec =
  match spec with
  | [] -> invalid_arg "Objective.scalarize: empty spec"
  | [ (_, w) ] when w = 1.0 -> fun (v : float array) -> v.(0)
  | axes ->
    let ws = Array.of_list (List.map snd axes) in
    fun (v : float array) ->
      if Array.length v <> Array.length ws then
        invalid_arg "Objective.scalarize: fitness arity mismatch";
      let acc = ref (ws.(0) *. v.(0)) in
      for i = 1 to Array.length ws - 1 do
        acc := !acc +. (ws.(i) *. v.(i))
      done;
      !acc

(* --- per-axis memos ------------------------------------------------- *)

(* A Sizecache-style content-addressed LRU, generic in the value: one
   mutex around table + recency, compute outside the lock, keep-first on
   racing duplicates (axis evaluation is deterministic, so the first
   value is the value).  Recency is an insertion clock; eviction scans
   for the stalest entry — fronts and populations keep these tables far
   below capacity, so the O(n) scan never shows up in a profile. *)
module Memo = struct
  type 'v t = {
    capacity : int;
    table : (string, 'v * int ref) Hashtbl.t;
    lock : Mutex.t;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create capacity =
    {
      capacity = max 1 capacity;
      table = Hashtbl.create (min 1024 (max 16 capacity));
      lock = Mutex.create ();
      clock = 0;
      hits = 0;
      misses = 0;
    }

  let evict_stalest t =
    let victim = ref None in
    Hashtbl.iter
      (fun k (_, tick) ->
        match !victim with
        | Some (_, best) when !tick >= best -> ()
        | _ -> victim := Some (k, !tick))
      t.table;
    match !victim with None -> () | Some (k, _) -> Hashtbl.remove t.table k

  let find_or_compute t key compute =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.table key with
    | Some (v, tick) ->
      t.hits <- t.hits + 1;
      t.clock <- t.clock + 1;
      tick := t.clock;
      Mutex.unlock t.lock;
      Telemetry.add_count "objective.memo.hit";
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Telemetry.add_count "objective.memo.miss";
      let v = compute () in
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.table key) then begin
        t.clock <- t.clock + 1;
        Hashtbl.replace t.table key (v, ref t.clock);
        if Hashtbl.length t.table > t.capacity then evict_stalest t
      end;
      Mutex.unlock t.lock;
      v

  let stats t =
    Mutex.lock t.lock;
    let s = (t.hits, t.misses) in
    Mutex.unlock t.lock;
    s
end

let digest (bin : Isa.Binary.t) =
  Digest.string bin.Isa.Binary.text ^ Digest.string bin.Isa.Binary.data

(* --- the evaluator -------------------------------------------------- *)

type evaluator = {
  spec : spec;
  eval_axes : (Isa.Binary.t -> float) array;  (** one per spec axis *)
  memos : (string * float Memo.t) list;  (** (axis name, memo) *)
  inspect_memo : (float * float) Memo.t;
      (** digest -> (gadgets, size): both static axes off one inspect *)
}

let default_capacity = 512

let evaluator ?(gadget_k = Binsight.Gadgets.default_k)
    ?(capacity = default_capacity) ?ncd ?evasion spec =
  if spec = [] then invalid_arg "Objective.evaluator: empty spec";
  let inspect_memo = Memo.create capacity in
  let statics bin =
    Memo.find_or_compute inspect_memo (digest bin) (fun () ->
        let r =
          Telemetry.with_span "objective.inspect" (fun () ->
              Binsight.Report.inspect ~gadget_k bin)
        in
        let census = r.Binsight.Report.r_gadgets in
        ( -.float_of_int (List.length census.Binsight.Gadgets.c_unique),
          -.float_of_int (Isa.Binary.size bin) ))
  in
  let injected name hook memo =
    match hook with
    | Some f -> fun bin -> Memo.find_or_compute memo (digest bin) (fun () -> f bin)
    | None ->
      invalid_arg
        (Printf.sprintf
           "Objective.evaluator: the %S axis needs an evaluation hook \
            (it depends on caller state: a baseline binary or a trained \
            classifier)"
           name)
  in
  let memos = ref [] in
  let eval_of_axis = function
    | Gadgets -> fun bin -> fst (statics bin)
    | Size -> fun bin -> snd (statics bin)
    | Ncd ->
      let memo = Memo.create capacity in
      memos := ("ncd", memo) :: !memos;
      injected "ncd" ncd memo
    | Evasion ->
      let memo = Memo.create capacity in
      memos := ("evasion", memo) :: !memos;
      injected "evasion" evasion memo
  in
  let eval_axes = Array.of_list (List.map (fun (a, _) -> eval_of_axis a) spec) in
  { spec; eval_axes; memos = List.rev !memos; inspect_memo }

let evaluate ev bin = Array.map (fun f -> f bin) ev.eval_axes

(* (memo name, hits, misses) for every memo the evaluator owns — the
   tuner folds these into its cache counters. *)
let memo_counts ev =
  let inspect =
    let h, m = Memo.stats ev.inspect_memo in
    [ ("inspect", h, m) ]
  in
  inspect
  @ List.map
      (fun (name, memo) ->
        let h, m = Memo.stats memo in
        (name, h, m))
      ev.memos
