(* The shared ask/tell driver.

   Everything the pre-refactor GA kept private — the evaluation cache
   keyed by genome, budget truncation at batch granularity, best/history
   bookkeeping replayed sequentially in proposal order, the plateau
   window — lives here once, so every strategy gets the batched
   parallel/memoized evaluation path and the same termination semantics.

   Fitness is a vector (one component per {!Objective} axis); the engine
   scalarizes every vector once at record time and runs all bookkeeping
   — best, history, plateau — on the scalar, exactly as the float-only
   engine did.  A passive {!Pareto} archive collects every evaluated
   (genome, vector) pair; it consumes no randomness and feeds nothing
   back into the strategies, so the 1-objective special case (identity
   scalarization) is bit-identical to the pre-vector engine: with the GA
   strategy plugged in, [run] still replays [Ga.Genetic.run]'s tracker
   line for line (locked by the frozen-GA differential test and the
   table1 sentinel in tools/ci.sh). *)

type tracker = {
  cache : (string, Strategy.score) Hashtbl.t;
  mutable evals : int;
  mutable best : bool array;
  mutable best_fitness : float;
  mutable best_vector : float array;
  mutable history_rev : (int * float) list;
  (* best fitness as of [evals - plateau_window] evaluations ago *)
  mutable recent : (int * float) list;  (** (eval index, best at that point) *)
}

(* Termination of last resort: a strategy that keeps proposing only
   already-cached genomes consumes no budget, so neither the budget nor
   the plateau window (which counts evaluations) can fire.  After this
   many consecutive zero-evaluation generations the engine stops — far
   beyond anything a live search produces, but it turns a pathological
   strategy/landscape combination (e.g. an exhausted tiny genome space)
   into termination instead of a hang. *)
let stale_generation_limit = 10_000

let run ?batch_fitness ?(notify_incumbent = fun (_ : float) -> ())
    ?(scalarize = fun (v : float array) -> v.(0)) ?(axes = []) ?archive ~rng
    ~termination ~problem ~fitness strategy =
  let open Strategy in
  let (module S : STRATEGY) = strategy in
  let batch =
    match batch_fitness with
    | Some f -> f
    | None -> fun genomes -> Array.map fitness genomes
  in
  let archive =
    match archive with Some a -> a | None -> Pareto.create ()
  in
  let pfx = "search." ^ S.name in
  let st =
    {
      cache = Hashtbl.create 256;
      evals = 0;
      best = Array.make problem.ngenes false;
      best_fitness = neg_infinity;
      best_vector = [||];
      history_rev = [];
      recent = [];
    }
  in
  let record genome vec =
    let scalar = scalarize vec in
    Hashtbl.replace st.cache (genome_key genome) { vec; scalar };
    st.evals <- st.evals + 1;
    if scalar > st.best_fitness then begin
      st.best_fitness <- scalar;
      st.best_vector <- Array.copy vec;
      st.best <- Array.copy genome
    end;
    ignore (Pareto.insert archive genome vec : bool);
    st.history_rev <- (st.evals, st.best_fitness) :: st.history_rev;
    st.recent <- (st.evals, st.best_fitness) :: st.recent
  in
  (* Score a whole batch at once: the distinct not-yet-evaluated genomes
     (first-occurrence order, truncated to the remaining budget) go to
     [batch] as one array — the parallel engine's unit of work — and the
     bookkeeping is then replayed sequentially in that same order, so
     best/history/evaluation counts never depend on how the batch was
     scheduled.  Returns how many evaluations the batch consumed. *)
  let evaluate_generation population scores =
    let seen = Hashtbl.create 16 in
    let pending = ref [] in
    Array.iter
      (fun g ->
        let key = genome_key g in
        if not (Hashtbl.mem st.cache key) && not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          pending := Array.copy g :: !pending
        end)
      population;
    let budget = max 0 (termination.max_evaluations - st.evals) in
    let pending = List.filteri (fun i _ -> i < budget) (List.rev !pending) in
    Telemetry.add_count ~by:(List.length pending) (pfx ^ ".evaluations");
    Telemetry.add_count
      ~by:(Array.length population - List.length pending)
      (pfx ^ ".cache_hits");
    if pending <> [] then begin
      (* the incumbent a batch hook may prune against is pinned to the
         best BEFORE the batch — never a racing running-best — so the
         scores (and therefore the whole run) stay independent of how
         the hook schedules the batch's work *)
      notify_incumbent st.best_fitness;
      let arr = Array.of_list pending in
      let fs = Telemetry.with_span (pfx ^ ".evaluate_batch") (fun () -> batch arr) in
      Array.iteri (fun i g -> record g fs.(i)) arr
    end;
    Array.iteri
      (fun i g -> scores.(i) <- Hashtbl.find_opt st.cache (genome_key g))
      population;
    List.length pending
  in
  let plateaued () =
    if st.evals < termination.plateau_window then false
    else begin
      (* drop entries older than the window *)
      let horizon = st.evals - termination.plateau_window in
      st.recent <- List.filter (fun (e, _) -> e >= horizon) st.recent;
      let oldest =
        List.fold_left
          (fun acc (e, f) ->
            match acc with
            | None -> Some (e, f)
            | Some (e', _) when e < e' -> Some (e, f)
            | Some _ -> acc)
          None st.recent
      in
      match oldest with
      | Some (_, old_best) when old_best > 0.0 ->
        let gain = (st.best_fitness -. old_best) /. old_best in
        Telemetry.set_gauge (pfx ^ ".plateau_gain") gain;
        gain < termination.plateau_epsilon
      | Some (_, old_best) ->
        (* At a zero or negative incumbent the relative gain is
           meaningless — division by zero, or a sign flip that makes
           every improvement look like a loss — so fall back to
           absolute gain: a window that fails to move the best by at
           least epsilon is a plateau.  (The old engine required
           [best <= old_best] here, so any infinitesimal improvement
           reset the window and a negative-fitness search could crawl
           forever; the positive branch above is untouched.) *)
        let gain = st.best_fitness -. old_best in
        Telemetry.set_gauge (pfx ^ ".plateau_gain") gain;
        gain < termination.plateau_epsilon
      | None -> false
    end
  in
  let state = S.init ~rng ~problem ~termination in
  let generation = ref 0 in
  let stale = ref 0 in
  let exhausted = ref false in
  let step () =
    Telemetry.with_span
      ~attrs:[ ("generation", string_of_int !generation) ]
      (pfx ^ ".generation")
      (fun () ->
        let population = S.ask state ~rng in
        if Array.length population = 0 then exhausted := true
        else begin
          let scores = Array.make (Array.length population) None in
          let fresh = evaluate_generation population scores in
          if fresh = 0 then incr stale else stale := 0;
          S.tell state ~rng ~genomes:population ~scores
        end);
    Telemetry.set_gauge (pfx ^ ".best_fitness") st.best_fitness;
    Telemetry.set_gauge (pfx ^ ".evaluations") (float_of_int st.evals);
    List.iteri
      (fun i ax ->
        if i < Array.length st.best_vector then
          Telemetry.set_gauge (pfx ^ ".best." ^ ax) st.best_vector.(i))
      axes;
    Telemetry.set_gauge "search.pareto.front_size"
      (float_of_int (Pareto.size archive))
  in
  let continue_ () =
    (not !exhausted)
    && !stale < stale_generation_limit
    && st.evals < termination.max_evaluations
    && not (plateaued ())
  in
  (* the seed batch is evaluated unconditionally (it carries the -Ox
     presets); budget and plateau gate every batch after it *)
  step ();
  while continue_ () do
    incr generation;
    step ()
  done;
  {
    best = st.best;
    best_fitness = st.best_fitness;
    best_vector = st.best_vector;
    evaluations = st.evals;
    history = List.rev st.history_rev;
    front = Pareto.front archive;
  }
