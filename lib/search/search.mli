(** The pluggable metaheuristic search layer (paper §3.2/§4.1),
    generalized to multi-objective vector fitness (ROADMAP item #1).

    One contract ({!STRATEGY}, an ask/tell interface: propose a batch of
    genomes, receive their scores) and one driver ({!run}) that owns
    everything the strategies share — the evaluation budget, the
    genome-keyed score cache with dedup at batch granularity, best/
    history bookkeeping, plateau termination, a passive {!Pareto}
    archive, and [search.<name>.*] telemetry.  Fitness is a vector with
    one component per {!Objective} axis; the engine scalarizes it once
    per evaluation and every strategy decision runs on the scalar, so
    the 1-objective case (identity scalarization) is bit-identical to
    the historical float-only engine.  Five strategies ship: the
    generational GA (bit-identical to the pre-refactor [Ga.Genetic]
    engine), batched hill climbing and simulated annealing, a random
    baseline, and an OpenTuner-style AUC-bandit ensemble over the other
    four. *)

type problem = {
  ngenes : int;  (** genome length: the profile's flag count *)
  seeds : bool array list;
      (** the -Ox preset vectors; every strategy's first batch contains
          all of them (never-discard-seeds invariant) *)
  repair : bool array -> bool array;
      (** constraint repair; strategies apply it to every proposal *)
}

type termination = {
  max_evaluations : int;
  plateau_window : int;  (** evaluations with no relative improvement … *)
  plateau_epsilon : float;  (** … above this rate stop the search (0.35%) *)
}

val default_termination : termination

type score = {
  vec : float array;  (** raw objective vector, {!Objective.spec} order *)
  scalar : float;  (** the engine's scalarization — what strategies rank *)
}

type outcome = {
  best : bool array;  (** best genome under the scalarization *)
  best_fitness : float;  (** its scalarized fitness *)
  best_vector : float array;
      (** its raw objective vector ([[||]] when nothing was evaluated) *)
  evaluations : int;  (** distinct genomes scored *)
  history : (int * float) list;
      (** (evaluation index, best-so-far scalarized fitness), ascending *)
  front : (bool array * float array) list;
      (** the Pareto front at termination, fitness vectors descending
          lexicographically; collapses to a singleton on 1-objective
          runs *)
}

(** The strategy contract.  A strategy only decides what to try next;
    scoring, budget, dedup, history, and termination live in the
    engine. *)
module type STRATEGY = sig
  val name : string
  (** Registry / telemetry name ([search.<name>.*] spans and gauges). *)

  type state

  val init :
    rng:Util.Rng.t -> problem:problem -> termination:termination -> state
  (** Create the strategy's private state.  Must not evaluate anything
      and should not consume [rng] (so seeding stays with the first
      {!ask}). *)

  val ask : state -> rng:Util.Rng.t -> bool array array
  (** Propose the next batch.  Every genome must already be
      [problem.repair]-fixed.  The {e first} batch must contain every
      repaired seed.  Returning [[||]] means the strategy is exhausted
      and ends the search. *)

  val tell :
    state ->
    rng:Util.Rng.t ->
    genomes:bool array array ->
    scores:score option array ->
    unit
  (** Receive the scores for the batch the last {!ask} proposed, element
      for element.  [None] marks a genome the budget ran out before —
      treat it as unevaluated.  Cached genomes come back with their
      cached score at zero budget cost.  Strategies rank candidates by
      [scalar] only. *)
end

type strategy = (module STRATEGY)

val name : strategy -> string

val all_names : string list
(** Registry order: ["ga"; "hill"; "anneal"; "random"; "ensemble"]. *)

val of_name : string -> strategy
(** Look up a registered strategy (default parameters).
    @raise Invalid_argument on an unknown name. *)

val run :
  ?batch_fitness:(bool array array -> float array array) ->
  ?notify_incumbent:(float -> unit) ->
  ?scalarize:(float array -> float) ->
  ?axes:string list ->
  ?archive:Pareto.t ->
  rng:Util.Rng.t ->
  termination:termination ->
  problem:problem ->
  fitness:(bool array -> float array) ->
  strategy ->
  outcome
(** Maximize the scalarization of [fitness] with the given strategy,
    collecting the Pareto front of the raw vectors on the side.  Each
    generation the strategy's batch is deduplicated against the run's
    evaluation cache, truncated to the remaining budget, and scored as
    one array — by [batch_fitness] when given (element [i] of its
    result must be the fitness vector of genome [i]; the hook through
    which {!Bintuner.Tuner} fans a generation out across a
    {!Parallel.Pool}) and by mapping [fitness] otherwise.

    [scalarize] folds each vector to the float the strategies rank by;
    the default is [fun v -> v.(0)] — the exact 1-objective identity —
    and {!Objective.scalarize} builds the weighted-sum fold for a spec.
    [axes] names the vector components for the per-axis
    [search.<name>.best.<axis>] telemetry gauges.  [archive] is the
    Pareto archive to populate (a fresh default-bound one otherwise);
    inserts are passive — no randomness, no feedback into strategy
    decisions — so they cannot perturb the search trace.

    All search decisions stay on the caller's [rng] in the sequential
    part of the loop, so the outcome is a function of the inputs alone —
    independent of how a batch hook schedules its work.  The budget is
    enforced at batch granularity: a batch is truncated, never overrun.
    The seed batch is evaluated unconditionally; every later batch is
    gated on the budget and the plateau window.  The plateau test is
    relative gain at a positive incumbent and absolute gain at a zero or
    negative one (a relative test divides by zero or flips sign there).
    [notify_incumbent] is called with the best {e scalarized} fitness so
    far immediately before each batch is scored (so [neg_infinity]
    before the seed batch) — the hook through which a batch evaluator
    learns the score a candidate must beat (NCD early-exit); the value
    is pinned per batch, keeping pruning decisions
    scheduling-independent. *)

val run_scalar :
  ?batch_fitness:(bool array array -> float array) ->
  ?notify_incumbent:(float -> unit) ->
  ?archive:Pareto.t ->
  rng:Util.Rng.t ->
  termination:termination ->
  problem:problem ->
  fitness:(bool array -> float) ->
  strategy ->
  outcome
(** The historical scalar entry point: wraps every fitness in a
    singleton vector and runs {!run} with the identity scalarization.
    Bit-identical to the pre-vector float engine (frozen-GA
    differential). *)

(** Named fitness axes, objective-spec parsing ("ncd,gadgets:0.5"),
    weighted-sum scalarization, and memoized axis evaluation over
    binaries (one shared [Binsight.Report.inspect] per distinct binary
    for the static axes; injected hooks with per-axis memos for [ncd]
    and [evasion]). *)
module Objective : sig
  type axis = Ncd | Gadgets | Size | Evasion

  val all_axes : axis list
  val axis_name : axis -> string

  val axis_of_name : string -> axis
  (** @raise Invalid_argument on an unknown name. *)

  type spec = (axis * float) list
  (** Ordered (axis, weight) pairs; the order fixes the meaning of every
      fitness vector downstream.  Weights are positive. *)

  val default : spec
  (** [[(Ncd, 1.0)]] — the paper's scalar objective. *)

  val names : spec -> string list
  val arity : spec -> int

  val is_scalar_ncd : spec -> bool
  (** The 1-axis unit-weight NCD spec — the bit-identical scalar path. *)

  val parse : string -> spec
  (** ["ncd,gadgets:0.5,size"]: comma-separated axes, optional [:w]
      weight (default 1).  @raise Invalid_argument on unknown axes,
      duplicates, non-positive weights, or an empty spec. *)

  val to_string : spec -> string
  (** Inverse of {!parse}; unit weights print bare. *)

  val scalarize : spec -> float array -> float
  (** Weighted sum.  For a 1-axis unit-weight spec this is exactly
      [fun v -> v.(0)]. *)

  type evaluator

  val evaluator :
    ?gadget_k:int ->
    ?capacity:int ->
    ?ncd:(Isa.Binary.t -> float) ->
    ?evasion:(Isa.Binary.t -> float) ->
    spec ->
    evaluator
  (** Build the per-axis evaluation pipeline for a spec.  [gadgets] and
      [size] are computed from one shared [Report.inspect] per distinct
      binary, memoized content-addressed ([capacity]-bounded LRU, like
      [Compress.Sizecache]); [ncd] and [evasion] must be injected (they
      depend on caller state — a baseline binary, a trained classifier)
      and get their own per-axis memos.  @raise Invalid_argument if the
      spec names an injected axis without its hook. *)

  val evaluate : evaluator -> Isa.Binary.t -> float array
  (** The fitness vector of one binary, in spec order. *)

  val memo_counts : evaluator -> (string * int * int) list
  (** (memo name, hits, misses) per memo, "inspect" first. *)
end

(** The Pareto-front archive: non-domination insert with dedup by
    fitness vector, crowding-distance pruning to a bound.  All axes are
    maximized.  Inserts consume no randomness — an archive wired into
    {!run} never perturbs the search trace. *)
module Pareto : sig
  type t

  val default_bound : int

  val create : ?bound:int -> unit -> t

  val size : t -> int

  val dominates : float array -> float array -> bool
  (** [dominates a b]: [a] at least as good everywhere, strictly better
      somewhere.  @raise Invalid_argument on arity mismatch. *)

  val insert : t -> bool array -> float array -> bool
  (** Offer a (genome, fitness vector); dominated candidates and
      duplicate vectors are rejected, dominated members are evicted,
      and one crowding-distance victim is pruned past the bound.
      Returns whether the candidate is in the front afterwards.
      @raise Invalid_argument on arity mismatch. *)

  val front : t -> (bool array * float array) list
  (** Fitness vectors descending lexicographically; copies. *)

  val is_non_dominated : ('a * float array) list -> bool
  (** Checker for externally-built fronts (CI gates, tests). *)
end

(** The generational GA (tournament selection, biased uniform crossover,
    forced-minimum mutation, elitism); bit-identical to the
    pre-refactor [Ga.Genetic.run]. *)
module Genetic : sig
  type params = {
    population_size : int;
    mutation_rate : float;  (** per-gene flip probability *)
    crossover_rate : float;  (** probability a pair recombines *)
    must_mutate_count : int;  (** minimum flips applied to each child *)
    crossover_strength : float;  (** bias towards the fitter parent *)
    tournament_size : int;
    elitism : int;  (** individuals copied unchanged per generation *)
  }

  val default_params : params
  val strategy : ?params:params -> unit -> strategy
end

(** Batched local search: steepest-ascent hill climbing with random
    restarts (each ask is the full single-bit-flip neighbourhood) and
    simulated annealing (each ask is [batch] proposals from the current
    point; Metropolis acceptance replayed in proposal order over a
    geometric temperature schedule driven by budget progress). *)
module Local : sig
  val hill_climb : unit -> strategy
  val anneal : ?batch:int -> ?t0:float -> ?t_end:float -> unit -> strategy
end

(** Random search — the control baseline. *)
module Baseline : sig
  val random : ?batch:int -> unit -> strategy
end

(** OpenTuner-style AUC-bandit meta-strategy: allocates each
    generation's batch to one sub-strategy by sliding-window
    improvement credit plus a UCB exploration bonus.  Default subs:
    ga, hill, anneal, random. *)
module Ensemble : sig
  val strategy :
    ?window:int ->
    ?exploration:float ->
    ?subs:strategy list ->
    unit ->
    strategy
end
