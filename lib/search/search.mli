(** The pluggable metaheuristic search layer (paper §3.2/§4.1).

    One contract ({!STRATEGY}, an ask/tell interface: propose a batch of
    genomes, receive their scores) and one driver ({!run}) that owns
    everything the strategies share — the evaluation budget, the
    genome-keyed score cache with dedup at batch granularity, best/
    history bookkeeping, plateau termination, and [search.<name>.*]
    telemetry.  Five strategies ship: the generational GA
    (bit-identical to the pre-refactor [Ga.Genetic] engine), batched
    hill climbing and simulated annealing, a random baseline, and an
    OpenTuner-style AUC-bandit ensemble over the other four. *)

type problem = {
  ngenes : int;  (** genome length: the profile's flag count *)
  seeds : bool array list;
      (** the -Ox preset vectors; every strategy's first batch contains
          all of them (never-discard-seeds invariant) *)
  repair : bool array -> bool array;
      (** constraint repair; strategies apply it to every proposal *)
}

type termination = {
  max_evaluations : int;
  plateau_window : int;  (** evaluations with no relative improvement … *)
  plateau_epsilon : float;  (** … above this rate stop the search (0.35%) *)
}

val default_termination : termination

type outcome = {
  best : bool array;
  best_fitness : float;
  evaluations : int;  (** distinct genomes scored *)
  history : (int * float) list;
      (** (evaluation index, best-so-far fitness), ascending *)
}

(** The strategy contract.  A strategy only decides what to try next;
    scoring, budget, dedup, history, and termination live in the
    engine. *)
module type STRATEGY = sig
  val name : string
  (** Registry / telemetry name ([search.<name>.*] spans and gauges). *)

  type state

  val init :
    rng:Util.Rng.t -> problem:problem -> termination:termination -> state
  (** Create the strategy's private state.  Must not evaluate anything
      and should not consume [rng] (so seeding stays with the first
      {!ask}). *)

  val ask : state -> rng:Util.Rng.t -> bool array array
  (** Propose the next batch.  Every genome must already be
      [problem.repair]-fixed.  The {e first} batch must contain every
      repaired seed.  Returning [[||]] means the strategy is exhausted
      and ends the search. *)

  val tell :
    state ->
    rng:Util.Rng.t ->
    genomes:bool array array ->
    scores:float option array ->
    unit
  (** Receive the scores for the batch the last {!ask} proposed, element
      for element.  [None] marks a genome the budget ran out before —
      treat it as unevaluated.  Cached genomes come back with their
      cached score at zero budget cost. *)
end

type strategy = (module STRATEGY)

val name : strategy -> string

val all_names : string list
(** Registry order: ["ga"; "hill"; "anneal"; "random"; "ensemble"]. *)

val of_name : string -> strategy
(** Look up a registered strategy (default parameters).
    @raise Invalid_argument on an unknown name. *)

val run :
  ?batch_fitness:(bool array array -> float array) ->
  ?notify_incumbent:(float -> unit) ->
  rng:Util.Rng.t ->
  termination:termination ->
  problem:problem ->
  fitness:(bool array -> float) ->
  strategy ->
  outcome
(** Maximize [fitness] with the given strategy.  Each generation the
    strategy's batch is deduplicated against the run's evaluation cache,
    truncated to the remaining budget, and scored as one array — by
    [batch_fitness] when given (element [i] of its result must be the
    fitness of genome [i]; the hook through which {!Bintuner.Tuner} fans
    a generation out across a {!Parallel.Pool}) and by mapping [fitness]
    otherwise.  All search decisions stay on the caller's [rng] in the
    sequential part of the loop, so the outcome is a function of the
    inputs alone — independent of how a batch hook schedules its work.
    The budget is enforced at batch granularity: a batch is truncated,
    never overrun.  The seed batch is evaluated unconditionally; every
    later batch is gated on the budget and the plateau window.
    [notify_incumbent] is called with the best fitness so far
    immediately before each batch is scored (so [neg_infinity] before
    the seed batch) — the hook through which a batch evaluator learns
    the score a candidate must beat (NCD early-exit); the value is
    pinned per batch, keeping pruning decisions scheduling-independent. *)

(** The generational GA (tournament selection, biased uniform crossover,
    forced-minimum mutation, elitism); bit-identical to the
    pre-refactor [Ga.Genetic.run]. *)
module Genetic : sig
  type params = {
    population_size : int;
    mutation_rate : float;  (** per-gene flip probability *)
    crossover_rate : float;  (** probability a pair recombines *)
    must_mutate_count : int;  (** minimum flips applied to each child *)
    crossover_strength : float;  (** bias towards the fitter parent *)
    tournament_size : int;
    elitism : int;  (** individuals copied unchanged per generation *)
  }

  val default_params : params
  val strategy : ?params:params -> unit -> strategy
end

(** Batched local search: steepest-ascent hill climbing with random
    restarts (each ask is the full single-bit-flip neighbourhood) and
    simulated annealing (each ask is [batch] proposals from the current
    point; Metropolis acceptance replayed in proposal order over a
    geometric temperature schedule driven by budget progress). *)
module Local : sig
  val hill_climb : unit -> strategy
  val anneal : ?batch:int -> ?t0:float -> ?t_end:float -> unit -> strategy
end

(** Random search — the control baseline. *)
module Baseline : sig
  val random : ?batch:int -> unit -> strategy
end

(** OpenTuner-style AUC-bandit meta-strategy: allocates each
    generation's batch to one sub-strategy by sliding-window
    improvement credit plus a UCB exploration bonus.  Default subs:
    ga, hill, anneal, random. *)
module Ensemble : sig
  val strategy :
    ?window:int ->
    ?exploration:float ->
    ?subs:strategy list ->
    unit ->
    strategy
end
