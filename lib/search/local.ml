(* Local search strategies: steepest-ascent hill climbing and simulated
   annealing, both batched.

   The pre-refactor versions (lib/ga/strategies.ml) were sequential —
   one fitness call at a time, their own eval counters, first seed only.
   Rewritten as ask/tell batches they flow through the same
   batch_fitness → Parallel.Pool → Compress.Sizecache path as the GA,
   inherit plateau termination, and honour the never-discard-seeds
   invariant: the first batch of each is every repaired -Ox preset. *)

(* Steepest-ascent hill climbing with random restarts.  Each ask after
   the seed batch is the full single-bit-flip neighbourhood of the
   current point (one parallel batch); if no neighbour strictly
   improves, restart from a random repaired genome. *)
let hill_climb () : Strategy.t =
  (module struct
    let name = "hill"

    type phase = Start | Climbing | Restarting

    type state = {
      problem : Strategy.problem;
      mutable phase : phase;
      mutable current : bool array;
      mutable current_fitness : float;
    }

    let init ~rng:_ ~problem ~termination:_ =
      { problem; phase = Start; current = [||]; current_fitness = neg_infinity }

    let neighbourhood st =
      let repair = st.problem.Strategy.repair in
      Array.init st.problem.Strategy.ngenes (fun i ->
          let n = Array.copy st.current in
          n.(i) <- not n.(i);
          repair n)

    let fresh st ~rng =
      st.problem.Strategy.repair
        (Strategy.random_genome rng st.problem.Strategy.ngenes)

    let ask st ~rng =
      match st.phase with
      | Start ->
        let target = max 1 (List.length st.problem.Strategy.seeds) in
        Strategy.seed_batch ~rng ~problem:st.problem ~target
      | Climbing ->
        (* the whole seed batch can come back unscored at zero budget:
           nothing to climb from, fall back to a random point *)
        if st.current = [||] then [| fresh st ~rng |] else neighbourhood st
      | Restarting -> [| fresh st ~rng |]

    let tell st ~rng:_ ~genomes ~scores =
      (* adopt the best strictly-improving genome of the batch; climbing
         with no improvement means a local optimum — restart *)
      let improved = ref false in
      Array.iteri
        (fun i s ->
          match s with
          | Some sc
            when sc.Strategy.scalar > st.current_fitness
                 || (st.phase = Start && st.current = [||]) ->
            (* the seed-batch guard adopts *some* point even on a
               degenerate all-equal landscape so climbing can start *)
            st.current <- Array.copy genomes.(i);
            st.current_fitness <- sc.Strategy.scalar;
            improved := true
          | _ -> ())
        scores;
      st.phase <-
        (match st.phase with
        | Start | Restarting -> Climbing
        | Climbing -> if !improved then Climbing else Restarting)
  end)

(* Simulated annealing over a geometric temperature schedule.  Each ask
   after the seed batch is [batch] independent proposals from the
   current point (1–2 bit flips each); tell replays the Metropolis
   acceptance sequentially over the batch in proposal order, with the
   temperature driven by evaluation progress against the budget. *)
let anneal ?(batch = 8) ?(t0 = 0.08) ?(t_end = 0.002) () : Strategy.t =
  (module struct
    let name = "anneal"

    type state = {
      problem : Strategy.problem;
      mutable started : bool;
      mutable current : bool array;
      mutable current_fitness : float;
      mutable told : int;  (** scored genomes seen, drives the schedule *)
      max_evaluations : int;
    }

    let init ~rng:_ ~problem ~termination =
      {
        problem;
        started = false;
        current = [||];
        current_fitness = neg_infinity;
        told = 0;
        max_evaluations = termination.Strategy.max_evaluations;
      }

    let propose st ~rng =
      let g = Array.copy st.current in
      let flips = 1 + Util.Rng.int rng 2 in
      for _ = 1 to flips do
        let i = Util.Rng.int rng st.problem.Strategy.ngenes in
        g.(i) <- not g.(i)
      done;
      st.problem.Strategy.repair g

    let ask st ~rng =
      if not st.started then begin
        st.started <- true;
        let target = max 1 (List.length st.problem.Strategy.seeds) in
        Strategy.seed_batch ~rng ~problem:st.problem ~target
      end
      else if st.current = [||] then
        (* every seed came back unscored (zero budget) — keep the chain
           alive with a fresh random point *)
        [|
          st.problem.Strategy.repair
            (Strategy.random_genome rng st.problem.Strategy.ngenes);
        |]
      else Array.init batch (fun _ -> propose st ~rng)

    let temperature st =
      let progress =
        if st.max_evaluations <= 0 then 1.0
        else
          min 1.0 (float_of_int st.told /. float_of_int st.max_evaluations)
      in
      t0 *. ((t_end /. t0) ** progress)

    let tell st ~rng ~genomes ~scores =
      Array.iteri
        (fun i s ->
          match s with
          | None -> ()
          | Some sc ->
            let f = sc.Strategy.scalar in
            st.told <- st.told + 1;
            let accept =
              st.current = [||]
              || f >= st.current_fitness
              ||
              let temp = temperature st in
              let delta = f -. st.current_fitness in
              Util.Rng.float rng 1.0 < exp (delta /. temp)
            in
            if accept then begin
              st.current <- Array.copy genomes.(i);
              st.current_fitness <- f
            end)
        scores
  end)
