(* Random search: the control every guided strategy is benchmarked
   against.  The first batch is the repaired -Ox seeds (padded to the
   batch size with random genomes), every later one is a fresh batch of
   random repaired genomes.  Scores are ignored — that is the point. *)

let random ?(batch = 16) () : Strategy.t =
  (module struct
    let name = "random"

    type state = { problem : Strategy.problem; mutable started : bool }

    let init ~rng:_ ~problem ~termination:_ = { problem; started = false }

    let ask st ~rng =
      if not st.started then begin
        st.started <- true;
        Strategy.seed_batch ~rng ~problem:st.problem ~target:batch
      end
      else
        Array.init batch (fun _ ->
            st.problem.Strategy.repair
              (Strategy.random_genome rng st.problem.Strategy.ngenes))

    let tell _ ~rng:_ ~genomes:_ ~scores:_ = ()
  end)
