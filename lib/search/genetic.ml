(* The generational GA (paper §4.1, Appendix B) as a pluggable strategy.

   This is the pre-refactor [Ga.Genetic.run] split along the ask/tell
   seam: population construction and breeding (everything that consumes
   the rng) live here, evaluation bookkeeping lives in {!Engine}.  The
   split is rng-transparent — the sequence of draws is byte-for-byte the
   old engine's, so a run through [Engine.run] is bit-identical to the
   frozen GA (locked by test/frozen_ga.ml and the table1 sentinel). *)

type params = {
  population_size : int;
  mutation_rate : float;  (** per-gene flip probability *)
  crossover_rate : float;  (** probability a pair recombines *)
  must_mutate_count : int;  (** minimum flips applied to each child *)
  crossover_strength : float;  (** bias towards the fitter parent's genes *)
  tournament_size : int;
  elitism : int;  (** individuals copied unchanged per generation *)
}

let default_params =
  {
    population_size = 16;
    mutation_rate = 0.06;
    crossover_rate = 0.8;
    must_mutate_count = 1;
    crossover_strength = 0.6;
    tournament_size = 3;
    elitism = 2;
  }

let strategy ?(params = default_params) () : Strategy.t =
  (module struct
    let name = "ga"

    type state = {
      problem : Strategy.problem;
      (* persistent across generations: tournament selection reads the
         previous generation's scores while breeding the next one *)
      mutable population : bool array array;
      mutable scores : float array;
      mutable started : bool;
    }

    let init ~rng:_ ~problem ~termination:_ =
      { problem; population = [||]; scores = [||]; started = false }

    let breed st ~rng =
      let ngenes = st.problem.Strategy.ngenes in
      let repair = st.problem.Strategy.repair in
      let population = st.population and scores = st.scores in
      let tournament () =
        let best = ref (Util.Rng.int rng (Array.length population)) in
        for _ = 2 to params.tournament_size do
          let c = Util.Rng.int rng (Array.length population) in
          if scores.(c) > scores.(!best) then best := c
        done;
        !best
      in
      let crossover a b fa fb =
        (* uniform crossover biased towards the fitter parent *)
        let bias =
          if fa >= fb then params.crossover_strength
          else 1.0 -. params.crossover_strength
        in
        Array.init ngenes (fun i ->
            if Util.Rng.float rng 1.0 < bias then a.(i) else b.(i))
      in
      let mutate g =
        let flipped = ref 0 in
        for i = 0 to ngenes - 1 do
          if Util.Rng.float rng 1.0 < params.mutation_rate then begin
            g.(i) <- not g.(i);
            incr flipped
          end
        done;
        while !flipped < params.must_mutate_count do
          let i = Util.Rng.int rng ngenes in
          g.(i) <- not g.(i);
          incr flipped
        done;
        g
      in
      (* build next generation, exactly as large as the current one so
         the blit below neither drops children nor reads past [np] *)
      let psize = Array.length population in
      let ranked =
        let idx = Array.init psize (fun i -> i) in
        Array.sort (fun i j -> compare scores.(j) scores.(i)) idx;
        idx
      in
      let next = ref [] in
      for e = 0 to min params.elitism psize - 1 do
        next := Array.copy population.(ranked.(e)) :: !next
      done;
      while List.length !next < psize do
        let i = tournament () and j = tournament () in
        let child =
          if Util.Rng.float rng 1.0 < params.crossover_rate then
            crossover population.(i) population.(j) scores.(i) scores.(j)
          else
            Array.copy population.(if scores.(i) >= scores.(j) then i else j)
        in
        let child = repair (mutate child) in
        next := child :: !next
      done;
      let np = Array.of_list (List.rev !next) in
      assert (Array.length np = psize);
      Array.blit np 0 population 0 psize

    let ask st ~rng =
      if not st.started then begin
        st.started <- true;
        let ngenes = st.problem.Strategy.ngenes in
        let repair = st.problem.Strategy.repair in
        let random_genome () =
          Array.init ngenes (fun _ -> Util.Rng.bool rng)
        in
        let population =
          let seeds =
            List.map
              (fun s -> repair (Array.copy s))
              st.problem.Strategy.seeds
          in
          (* never discard seed vectors: the population is the larger of
             the nominal size (floor 2, so tournaments have something to
             pick from) and the seed count, padded with random genomes *)
          let target = max (max params.population_size 2) (List.length seeds) in
          let extra =
            List.init
              (max 0 (target - List.length seeds))
              (fun _ -> repair (random_genome ()))
          in
          Array.of_list (seeds @ extra)
        in
        st.population <- population;
        st.scores <- Array.make (Array.length population) neg_infinity
      end
      else breed st ~rng;
      st.population

    let tell st ~rng:_ ~genomes:_ ~scores =
      (* merge the scalarized fitness into the persistent score table;
         [None] (budget exhausted before this genome) keeps the stale
         value, exactly as the pre-refactor engine did *)
      Array.iteri
        (fun i s ->
          match s with
          | Some sc -> st.scores.(i) <- sc.Strategy.scalar
          | None -> ())
        scores
  end)
