(* Facade of the pluggable search layer: re-exports the strategy
   contract, the shared engine, and the strategy registry.  Everything
   downstream (tuner, CLI, bench drivers, tests) goes through [Search];
   the internal modules stay hidden behind the wrapped library. *)

module Strategy = Strategy
module Engine = Engine
module Genetic = Genetic
module Local = Local
module Baseline = Baseline
module Ensemble = Ensemble

type problem = Strategy.problem = {
  ngenes : int;
  seeds : bool array list;
  repair : bool array -> bool array;
}

type termination = Strategy.termination = {
  max_evaluations : int;
  plateau_window : int;
  plateau_epsilon : float;
}

type outcome = Strategy.outcome = {
  best : bool array;
  best_fitness : float;
  evaluations : int;
  history : (int * float) list;
}

module type STRATEGY = Strategy.STRATEGY

type strategy = Strategy.t

let default_termination = Strategy.default_termination
let name = Strategy.name
let run = Engine.run
let all_names = [ "ga"; "hill"; "anneal"; "random"; "ensemble" ]

let of_name = function
  | "ga" -> Genetic.strategy ()
  | "hill" -> Local.hill_climb ()
  | "anneal" -> Local.anneal ()
  | "random" -> Baseline.random ()
  | "ensemble" -> Ensemble.strategy ()
  | other ->
    invalid_arg
      (Printf.sprintf "Search.of_name: unknown strategy %S (expected %s)" other
         (String.concat "|" all_names))
