(* Facade of the pluggable search layer: re-exports the strategy
   contract, the shared engine, the objective axes, the Pareto archive,
   and the strategy registry.  Everything downstream (tuner, CLI, bench
   drivers, tests) goes through [Search]; the internal modules stay
   hidden behind the wrapped library. *)

module Strategy = Strategy
module Engine = Engine
module Objective = Objective
module Pareto = Pareto
module Genetic = Genetic
module Local = Local
module Baseline = Baseline
module Ensemble = Ensemble

type problem = Strategy.problem = {
  ngenes : int;
  seeds : bool array list;
  repair : bool array -> bool array;
}

type termination = Strategy.termination = {
  max_evaluations : int;
  plateau_window : int;
  plateau_epsilon : float;
}

type score = Strategy.score = { vec : float array; scalar : float }

type outcome = Strategy.outcome = {
  best : bool array;
  best_fitness : float;
  best_vector : float array;
  evaluations : int;
  history : (int * float) list;
  front : (bool array * float array) list;
}

module type STRATEGY = Strategy.STRATEGY

type strategy = Strategy.t

let default_termination = Strategy.default_termination
let name = Strategy.name
let run = Engine.run

(* The 1-objective convenience wrapper: scalar fitness in, scalar
   bookkeeping out.  Wrapping every score in a singleton vector and
   scalarizing with the (default) identity leaves the engine's decision
   trace bit-identical to the pre-vector float engine — this is the
   entry point the frozen-GA differential locks. *)
let run_scalar ?batch_fitness ?notify_incumbent ?archive ~rng ~termination
    ~problem ~fitness strategy =
  let batch_fitness =
    match batch_fitness with
    | None -> None
    | Some f -> Some (fun genomes -> Array.map (fun x -> [| x |]) (f genomes))
  in
  Engine.run ?batch_fitness ?notify_incumbent ?archive ~rng ~termination
    ~problem
    ~fitness:(fun g -> [| fitness g |])
    strategy

let all_names = [ "ga"; "hill"; "anneal"; "random"; "ensemble" ]

let of_name = function
  | "ga" -> Genetic.strategy ()
  | "hill" -> Local.hill_climb ()
  | "anneal" -> Local.anneal ()
  | "random" -> Baseline.random ()
  | "ensemble" -> Ensemble.strategy ()
  | other ->
    invalid_arg
      (Printf.sprintf "Search.of_name: unknown strategy %S (expected %s)" other
         (String.concat "|" all_names))
