(** Obfuscator-LLVM substitute (paper §5.3, "BinTuner vs Obfuscator-
    LLVM"): the three O-LLVM schemes as IR passes.

    - {!substitute_instructions}: rewrite arithmetic with equivalent but
      longer idioms (x+y → x−(−y), x⊕y → (x∨y)−(x∧y), …), chosen
      pseudo-randomly per site — O-LLVM's fixed substitution rules;
    - {!bogus_control_flow}: guard blocks with always-true opaque
      predicates (x²+x is even) whose false edge enters a junk clone;
    - {!flatten}: route block-to-block control flow through a central
      switch dispatcher driven by a state variable.

    All passes preserve semantics; [apply_all] runs the three in O-LLVM's
    order. *)

val substitute_instructions : Util.Rng.t -> Vir.Ir.func -> unit

val bogus_control_flow : Util.Rng.t -> Vir.Ir.func -> unit

val flatten : Vir.Ir.func -> unit

val apply_all : seed:int -> Vir.Ir.program -> unit
(** Obfuscate every function (including stdlib — O-LLVM sees the whole
    module). *)
