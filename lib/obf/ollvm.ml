open Vir.Ir

(* ------------------------------------------------------------------ *)
(* Instruction substitution                                            *)
(* ------------------------------------------------------------------ *)

let substitute_instructions rng f =
  let rewrite i =
    match i with
    | Bin (Add, d, a, b) when Util.Rng.int rng 100 < 60 ->
      (* x + y = x - (-y) *)
      let t = fresh_reg f in
      [ Un (Neg, t, b); Bin (Sub, d, a, Reg t) ]
    | Bin (Sub, d, a, b) when Util.Rng.int rng 100 < 60 ->
      (* x - y = x + (-y) *)
      let t = fresh_reg f in
      [ Un (Neg, t, b); Bin (Add, d, a, Reg t) ]
    | Bin (Xor, d, a, b) when Util.Rng.int rng 100 < 50 ->
      (* x ^ y = (x | y) - (x & y) *)
      let t1 = fresh_reg f and t2 = fresh_reg f in
      [ Bin (Or, t1, a, b); Bin (And, t2, a, b); Bin (Sub, d, Reg t1, Reg t2) ]
    | Bin (Or, d, a, b) when Util.Rng.int rng 100 < 50 ->
      (* x | y = (x & y) | (x ^ y)  — via add: (x ^ y) + (x & y) *)
      let t1 = fresh_reg f and t2 = fresh_reg f in
      [ Bin (Xor, t1, a, b); Bin (And, t2, a, b); Bin (Add, d, Reg t1, Reg t2) ]
    | Bin (And, d, a, b) when Util.Rng.int rng 100 < 40 ->
      (* x & y = (x | y) - (x ^ y) *)
      let t1 = fresh_reg f and t2 = fresh_reg f in
      [ Bin (Or, t1, a, b); Bin (Xor, t2, a, b); Bin (Sub, d, Reg t1, Reg t2) ]
    | _ -> [ i ]
  in
  List.iter (fun b -> b.instrs <- List.concat_map rewrite b.instrs) f.blocks

(* ------------------------------------------------------------------ *)
(* Bogus control flow                                                  *)
(* ------------------------------------------------------------------ *)

(* Guard roughly a third of the blocks with an opaque predicate:
   (x² + x) mod 2 == 0 holds for every integer x, so the true edge always
   fires; the false edge enters a junk block that jumps back to the
   guard, forming a dead loop the static CFG cannot dismiss. *)
let bogus_control_flow rng f =
  let victims =
    List.filter
      (fun (b : block) -> b.instrs <> [] && Util.Rng.int rng 100 < 35)
      f.blocks
  in
  List.iter
    (fun (victim : block) ->
      let guard_label = fresh_label f in
      let junk_label = fresh_label f in
      let real_label = fresh_label f in
      (* move the victim's body into a new block; the victim becomes the
         guard so predecessors need no retargeting *)
      let real =
        { label = real_label; instrs = victim.instrs; term = victim.term }
      in
      let x = fresh_reg f in
      let x2 = fresh_reg f in
      let sum = fresh_reg f in
      let parity = fresh_reg f in
      let cond = fresh_reg f in
      let seed_val = Util.Rng.int rng 1000 in
      let junk_t = fresh_reg f in
      let junk =
        {
          label = junk_label;
          instrs = [ Bin (Add, junk_t, Reg x, Imm 13) ];
          term = Jmp guard_label;
        }
      in
      let guard =
        {
          label = guard_label;
          instrs =
            [
              Mov (x, Imm seed_val);
              Bin (Mul, x2, Reg x, Reg x);
              Bin (Add, sum, Reg x2, Reg x);
              Bin (And, parity, Reg sum, Imm 1);
              Bin (Seq, cond, Reg parity, Imm 0);
            ];
          term = Br (Reg cond, real_label, junk_label);
        }
      in
      victim.instrs <- guard.instrs;
      victim.term <- guard.term;
      (* rename: the guard reuses the victim's label; insert real + junk
         after it in layout *)
      let rec insert = function
        | [] -> [ real; junk ]
        | b :: rest when b.label = victim.label -> b :: real :: junk :: rest
        | b :: rest -> b :: insert rest
      in
      f.blocks <- insert f.blocks;
      (* junk jumps back to the victim (the guard) *)
      junk.term <- Jmp victim.label)
    victims

(* ------------------------------------------------------------------ *)
(* Control-flow flattening                                             *)
(* ------------------------------------------------------------------ *)

let flatten f =
  match f.blocks with
  | [] | [ _ ] -> ()
  | entry :: rest ->
    let state = fresh_reg f in
    let dispatch_label = fresh_label f in
    (* each block's terminator becomes a state update + jump to the
       dispatcher; Ret / Tail_call / Switch stay direct *)
    let reroute (b : block) =
      match b.term with
      | Jmp l ->
        b.instrs <- b.instrs @ [ Mov (state, Imm l) ];
        b.term <- Jmp dispatch_label
      | Br (c, t, e) ->
        let sel = fresh_reg f in
        b.instrs <- b.instrs @ [ Select (sel, c, Imm t, Imm e); Mov (state, Reg sel) ];
        b.term <- Jmp dispatch_label
      | Loop_branch (r, t, e) ->
        (* decrement explicitly, then select *)
        let sel = fresh_reg f in
        let nz = fresh_reg f in
        b.instrs <-
          b.instrs
          @ [
              Bin (Sub, r, Reg r, Imm 1);
              Bin (Sne, nz, Reg r, Imm 0);
              Select (sel, Reg nz, Imm t, Imm e);
              Mov (state, Reg sel);
            ];
        b.term <- Jmp dispatch_label
      | Ret _ | Tail_call _ | Switch _ -> ()
    in
    List.iter reroute f.blocks;
    let targets =
      List.sort_uniq compare
        (List.concat_map (fun b -> successors b.term) (entry :: rest))
    in
    ignore targets;
    let cases =
      List.filter_map
        (fun (b : block) ->
          if b.label = entry.label then None else Some (b.label, b.label))
        f.blocks
    in
    let dispatcher =
      {
        label = dispatch_label;
        instrs = [];
        term = Switch (Reg state, cases, entry.label);
      }
    in
    f.blocks <- entry :: dispatcher :: rest

let apply_all ~seed (p : program) =
  let rng = Util.Rng.create seed in
  List.iter
    (fun f ->
      substitute_instructions rng f;
      bogus_control_flow rng f;
      flatten f)
    p.funcs
