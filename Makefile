# Convenience entry points; everything below is plain dune.
#
#   make check        build everything and run the full test suite
#   make bench-smoke  scaled-down Table 1 on the parallel engine (-quick -j 2)
#   make verify-ir    IR-verified compile of the whole corpus (every preset,
#                     profile, arch and a few random valid flag vectors) plus
#                     the pedantic lint against the committed allowlist
#   make serve-smoke  boot the tuning daemon against a scratch persistent
#                     store, run two jobs + status over stdin, assert job 2
#                     is served off disk and no worker domains leak
#   make inspect      verified disassembly + gadget census + feature
#                     extraction over the whole corpus on all four arches
#                     (exits non-zero on any disassembly mismatch)
#   make ci           what tools/ci.sh runs: check + bench-smoke + the
#                     determinism-sentinel cross-check over -j values

.PHONY: check bench-smoke verify-ir serve-smoke inspect ci

check:
	dune build @all
	dune runtest

# A fast end-to-end exercise of the tuning engine: quick search budget,
# two worker domains, full Table 1 driver (pretune fan-out + compile memo
# + pass-prefix snapshot store + determinism sentinel all on the hot
# path), then the search-strategy microbench (all five strategies through
# the batched evaluation path, per-run evals/sec, and the hill
# incremental-compilation off/on ablation, emitting BENCH_search.json)
# from a scratch directory so the smoke numbers never clobber a committed
# full-run artifact, and finally a tiny `pareto` run (the vector-fitness
# engine end to end: ncd,gadgets tuning, Pareto fronts, BENCH_pareto.json
# — the experiment exits non-zero if any front is mutually dominated).
bench-smoke:
	dune exec bench/main.exe -- -quick -j 2 table1
	dune build bench/main.exe
	tmp=$$(mktemp -d) && (cd $$tmp && $(CURDIR)/_build/default/bench/main.exe \
	  -quick -j 2 -only 462.libquantum search) && rm -rf $$tmp
	tmp=$$(mktemp -d) && (cd $$tmp && $(CURDIR)/_build/default/bench/main.exe \
	  -quick -j 2 -only 462.libquantum pareto) && rm -rf $$tmp

# The static-analysis gate: every pass of every compile in the sweep runs
# under the IR verifier, then the MinC lint must report nothing beyond the
# reviewed findings in tools/lint_allowlist.txt.
verify-ir:
	dune exec bin/bintuner_cli.exe -- verify
	dune exec bin/bintuner_cli.exe -- analyze --allowlist tools/lint_allowlist.txt

# The serve daemon end-to-end: stdin transport, scratch artifact store,
# two identical jobs (the second must be served from disk — the memo is
# disabled so hits cannot hide in memory), a status request, and a clean
# quit.  tools/ci.sh runs the same script as its final gate.
serve-smoke:
	tools/serve_smoke.sh

# Binary-level static analysis over every corpus program on every arch:
# recursive-descent disassembly cross-checked against the linear sweep
# and the compiler's true instruction boundaries, gadget census, dead
# code and stack bounds.  Any disassembly mismatch fails the target.
inspect:
	dune exec bin/bintuner_cli.exe -- inspect --all --arch all

ci:
	tools/ci.sh
