# Convenience entry points; everything below is plain dune.
#
#   make check        build everything and run the full test suite
#   make bench-smoke  scaled-down Table 1 on the parallel engine (-quick -j 2)
#   make ci           what tools/ci.sh runs: check + bench-smoke + the
#                     determinism-sentinel cross-check over -j values

.PHONY: check bench-smoke ci

check:
	dune build @all
	dune runtest

# A fast end-to-end exercise of the tuning engine: quick GA budget, two
# worker domains, full Table 1 driver (pretune fan-out + compile memo +
# determinism sentinel all on the hot path).
bench-smoke:
	dune exec bench/main.exe -- -quick -j 2 table1

ci:
	tools/ci.sh
