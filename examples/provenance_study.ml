(* The §2.4 study in miniature: train a compiler-provenance classifier
   (the BinComp/ORIGIN stand-in), then examine a population of "Mirai"
   variants — some compiled at default presets, some with custom flag
   vectors — and measure how many are recognizably non-default.

     dune exec examples/provenance_study.exe *)

let () =
  let gcc = Toolchain.Flags.gcc and llvm = Toolchain.Flags.llvm in
  (* training corpus: every preset of both profiles on a few programs *)
  let training =
    List.concat_map
      (fun bname ->
        let b = Corpus.find bname in
        List.concat_map
          (fun profile ->
            List.map
              (fun preset ->
                ( {
                    Provenance.Classify.profile =
                      profile.Toolchain.Flags.profile_name;
                    preset;
                  },
                  Toolchain.Pipeline.compile_preset profile preset
                    (Corpus.program b) ))
              Toolchain.Flags.preset_names)
          [ gcc; llvm ])
      [ "coreutils"; "openssl"; "lightaidra" ]
  in
  let model = Provenance.Classify.train training in
  Printf.printf "trained on %d labelled binaries\n%!" (List.length training);

  (* sanity: presets of an unseen program classify correctly *)
  let bench = Corpus.find "mirai" in
  let program = Corpus.program bench in
  List.iter
    (fun preset ->
      let bin = Toolchain.Pipeline.compile_preset gcc preset program in
      let lbl, d = Provenance.Classify.classify model bin in
      Printf.printf "  gcc %-3s classified as %s/%s (distance %.4f)\n" preset
        lbl.profile lbl.preset d)
    Toolchain.Flags.preset_names;

  (* a population with custom flag vectors *)
  let rng = Util.Rng.create 2019 in
  let n = Array.length gcc.Toolchain.Flags.flags in
  let customs =
    List.init 40 (fun _ ->
        let v =
          Toolchain.Constraints.repair gcc rng
            (Array.init n (fun _ -> Util.Rng.bool rng))
        in
        Toolchain.Pipeline.compile_flags gcc v program)
  in
  let nondefault =
    List.length
      (List.filter
         (fun bin ->
           let lbl, _ = Provenance.Classify.classify model bin in
           lbl.preset = "non-default")
         customs)
  in
  Printf.printf
    "custom-flag variants flagged as non-default: %d/%d (the paper found 42%%\n\
     of wild Mirai samples were non-default compiles)\n"
    nondefault (List.length customs)
