(* Quickstart: compile a MinC program at two optimization levels, measure
   how different the binaries are, then let BinTuner find a flag vector
   that makes them even more different.

     dune exec examples/quickstart.exe *)

let source =
  {|
  int table[64];

  int mix(int x) {
    return (x * 31 + 7) ^ (x / 4);
  }

  int main() {
    int acc = 0;
    for (int i = 0; i < 64; i++) { table[i] = mix(i + input(0)); }
    for (int i = 0; i < 64; i++) { acc += table[i] % 100; }
    print_int(acc);
    return 0;
  }
  |}

let () =
  (* 1. Parse, link the MinC stdlib, type-check. *)
  let program = Minic.Sema.analyze source in

  (* 2. Compile at -O0 and -O3 with the GCC-flavoured profile. *)
  let profile = Toolchain.Flags.gcc in
  let o0 = Toolchain.Pipeline.compile_preset profile "O0" program in
  let o3 = Toolchain.Pipeline.compile_preset profile "O3" program in
  Printf.printf "-O0: %4d bytes of code   -O3: %4d bytes of code\n"
    (String.length o0.Isa.Binary.text)
    (String.length o3.Isa.Binary.text);

  (* 3. Both must behave identically — run them in the VX VM. *)
  let run bin =
    let r = Vm.Machine.run bin ~input:[| 9 |] in
    (Vir.Interp.output_to_string r.output, r.steps)
  in
  let out0, steps0 = run o0 and out3, steps3 = run o3 in
  assert (out0 = out3);
  Printf.printf "output %s(-O3 runs %.1fx fewer instructions)\n" out0
    (float_of_int steps0 /. float_of_int steps3);

  (* 4. How different do the binaries look?  Two views: NCD over the raw
     code bytes (BinTuner's fitness) and the BinHunt difference score
     (the paper's reference metric). *)
  Printf.printf "NCD(O3, O0)      = %.3f\n"
    (Bintuner.Tuner.ncd_of_binaries o3 o0);
  Printf.printf "BinHunt(O3, O0)  = %.3f\n" (Diffing.Binhunt.diff_score o3 o0);

  (* 5. Ask BinTuner for a custom flag vector that beats -O3. *)
  let bench =
    {
      Corpus.bname = "quickstart";
      suite = Corpus.Coreutils;
      source;
      workloads = [ [| 0 |]; [| 9 |]; [| 255 |] ];
    }
  in
  let result = Bintuner.Tuner.tune ~profile bench in
  Printf.printf
    "BinTuner: %d compilations, NCD %.3f (vs %.3f at -O3), functional: %b\n"
    result.iterations result.best_ncd
    (List.assoc "O3" result.preset_ncd)
    result.functional_ok;
  Printf.printf "BinHunt(tuned, O0) = %.3f\n"
    (Diffing.Binhunt.diff_score result.refined_binary o0);
  Printf.printf "flags: %s\n"
    (String.concat " "
       (Bintuner.Tuner.flags_enabled profile result.refined_vector))
