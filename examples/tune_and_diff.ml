(* The paper's core experiment on one benchmark: tune 462.libquantum
   under the LLVM profile, then show what every diffing tool makes of the
   result (Figure 5 + Figure 8 in miniature).

     dune exec examples/tune_and_diff.exe [benchmark-name] *)

let () =
  let name =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "462.libquantum"
  in
  let bench = Corpus.find name in
  let profile = Toolchain.Flags.llvm in
  let program = Corpus.program bench in
  let o0 = Toolchain.Pipeline.compile_preset profile "O0" program in

  Printf.printf "== %s under %s ==\n%!" bench.bname profile.profile_name;

  (* BinHunt scores of the default ladder *)
  List.iter
    (fun preset ->
      let bin = Toolchain.Pipeline.compile_preset profile preset program in
      Printf.printf "  BinHunt(%-2s vs O0) = %.3f   (NCD %.3f)\n%!" preset
        (Diffing.Binhunt.diff_score bin o0)
        (Bintuner.Tuner.ncd_of_binaries bin o0))
    [ "O1"; "O2"; "O3"; "Os" ];

  (* the tuned binary *)
  let r = Bintuner.Tuner.tune ~profile bench in
  Printf.printf
    "  BinHunt(BinTuner vs O0) = %.3f   (NCD %.3f, %d iterations, functional %b)\n%!"
    (Diffing.Binhunt.diff_score r.refined_binary o0)
    r.best_ncd r.iterations r.functional_ok;

  (* matched-representation ratios (the paper's Tables 7/8 view) *)
  let m = Diffing.Metrics.compute r.refined_binary o0 in
  Printf.printf "  matched (blocks, edges, funcs) vs O0: %s\n"
    (Diffing.Metrics.to_string m);

  (* every tool's Precision@1 against the tuned binary *)
  Printf.printf "== Precision@1 of the diffing tools (tuned vs O0) ==\n";
  List.iter
    (fun report ->
      Printf.printf "  %-10s %d/%d = %.2f\n" report.Diffing.Precision.tool
        report.hits report.total report.precision)
    (Diffing.Precision.evaluate_all r.refined_binary o0);

  (* and against plain -O1, for contrast *)
  let o1 = Toolchain.Pipeline.compile_preset profile "O1" program in
  Printf.printf "== Precision@1 at -O1, for contrast ==\n";
  List.iter
    (fun report ->
      Printf.printf "  %-10s %d/%d = %.2f\n" report.Diffing.Precision.tool
        report.hits report.total report.precision)
    (Diffing.Precision.evaluate_all o1 o0)
